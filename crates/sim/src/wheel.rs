//! A hierarchical timing wheel — the production scheduler behind
//! [`crate::engine::Engine`].
//!
//! The original [`crate::event::EventQueue`] is a binary heap: every
//! schedule and pop costs O(log n), which at 10⁵–10⁶ pending events makes
//! the scheduler itself a hot spot. [`TimingWheel`] replaces it with the
//! classical hierarchical timing wheel (Varghese & Lauck): eight levels of
//! 256 slots over the 64-bit nanosecond clock, so an event is bucketed by
//! the highest byte in which its firing time differs from the wheel's
//! current time. Scheduling is O(1); a pop cascades an event through at
//! most seven levels, amortized O(1); per-level occupancy bitmaps make
//! "find the next non-empty slot" four word-scans instead of 256 probes.
//!
//! The wheel keeps the exact determinism contract of the heap queue —
//! events fire in `(time, seq)` order, i.e. FIFO among events scheduled
//! for the same instant — and the heap queue stays in-tree as the
//! reference oracle: a proptest replays arbitrary
//! schedule/cancel/pop/peek interleavings against both and demands
//! identical observable behaviour.

use crate::event::EventId;
use crate::time::SimTime;
use std::collections::HashSet;

/// log2 of the slots per level.
const BITS: usize = 8;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Levels; 8 × 8 bits covers the full `u64` nanosecond clock.
const LEVELS: usize = 8;
/// Low-byte mask.
const MASK: u64 = (SLOTS - 1) as u64;
/// Words per occupancy bitmap (256 slots / 64 bits).
const WORDS: usize = SLOTS / 64;

#[derive(Debug)]
struct Entry<E> {
    /// Requested firing time in nanos (may sit below the wheel's current
    /// time when scheduled "into the past"; ordering always uses it).
    time: u64,
    seq: u64,
    payload: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.time, self.seq)
    }
}

/// A time-ordered, FIFO-stable pending-event set with O(1) scheduling,
/// amortized O(1) pops, and a shared-borrow O(1) peek.
///
/// Drop-in replacement for [`crate::event::EventQueue`] — same API, same
/// `(time, seq)` pop order, same cancellation semantics.
///
/// # Examples
///
/// ```
/// use jrsnd_sim::wheel::TimingWheel;
/// use jrsnd_sim::time::SimTime;
///
/// let mut w = TimingWheel::new();
/// w.schedule(SimTime::from_secs(2), "late");
/// w.schedule(SimTime::from_nanos(10), "early");
/// assert_eq!(w.peek_time(), Some(SimTime::from_nanos(10)));
/// let (t, e) = w.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_nanos(10), "early"));
/// ```
#[derive(Debug)]
pub struct TimingWheel<E> {
    /// `levels[l][slot]` holds entries whose time differs from `current`
    /// first in byte `l`. Entries within a slot are unordered; extraction
    /// scans the (small) slot for the `(time, seq)` minimum.
    levels: Vec<Vec<Vec<Entry<E>>>>,
    /// Occupancy bitmaps, one bit per slot, for O(words) slot scans.
    occupied: [[u64; WORDS]; LEVELS],
    /// The wheel's notion of "now": the slot position of the last
    /// extraction. Only ever moves forward.
    current: u64,
    /// Cached global minimum, held outside the wheel so peeking is a
    /// shared-borrow field read. Invariant: `Some` iff any live event
    /// exists, and it is the `(time, seq)`-minimal live entry.
    next: Option<Entry<E>>,
    /// Entries physically stored in the wheel (live or lazily cancelled).
    stored: usize,
    next_seq: u64,
    /// Sequence numbers scheduled but neither fired nor cancelled.
    live: HashSet<u64>,
    /// Cancelled sequence numbers whose wheel entries await lazy removal.
    cancelled: HashSet<u64>,
}

impl<E> Default for TimingWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimingWheel<E> {
    /// Creates an empty wheel at time zero.
    pub fn new() -> Self {
        TimingWheel {
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            occupied: [[0u64; WORDS]; LEVELS],
            current: 0,
            next: None,
            stored: 0,
            next_seq: 0,
            live: HashSet::new(),
            cancelled: HashSet::new(),
        }
    }

    /// Schedules `payload` to fire at `time`, returning a cancellation
    /// handle. Times before an already-fired event are honoured the same
    /// way [`crate::event::EventQueue`] honours them: the event simply
    /// becomes the most urgent one.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        let entry = Entry {
            time: time.as_nanos(),
            seq,
            payload,
        };
        match &self.next {
            Some(head) if head.key() <= entry.key() => self.place(entry),
            _ => {
                // The new event preempts the cached minimum.
                if let Some(old) = self.next.replace(entry) {
                    self.place(old);
                }
            }
        }
        EventId::from_raw(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if it was
    /// still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let seq = id.raw();
        if !self.live.remove(&seq) {
            return false;
        }
        if self.next.as_ref().is_some_and(|e| e.seq == seq) {
            self.next = None;
            self.refill();
        } else {
            // Lazy: the wheel entry is dropped when its slot is scanned.
            self.cancelled.insert(seq);
        }
        true
    }

    /// Removes and returns the earliest pending event. `None` when no
    /// live event remains.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let head = self.next.take()?;
        self.live.remove(&head.seq);
        self.refill();
        Some((SimTime::from_nanos(head.time), head.payload))
    }

    /// The firing time of the earliest live event, if any. A shared-borrow
    /// O(1) read of the cached minimum.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.next.as_ref().map(|e| SimTime::from_nanos(e.time))
    }

    /// Number of live (scheduled, not cancelled, not yet fired) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Buckets an entry by the highest byte in which its effective time
    /// differs from `current`. Times at or before `current` land in the
    /// immediate slot, where the min-scan restores their true order.
    fn place(&mut self, entry: Entry<E>) {
        let t_eff = entry.time.max(self.current);
        let xor = t_eff ^ self.current;
        let level = if xor == 0 {
            0
        } else {
            (63 - xor.leading_zeros() as usize) / BITS
        };
        let idx = ((t_eff >> (BITS * level)) & MASK) as usize;
        self.levels[level][idx].push(entry);
        self.occupied[level][idx / 64] |= 1u64 << (idx % 64);
        self.stored += 1;
    }

    /// First occupied slot index `>= start` at `level`, via the bitmap.
    fn next_occupied(&self, level: usize, start: usize) -> Option<usize> {
        let mut word = start / 64;
        let mut bits = self.occupied[level][word] & (!0u64 << (start % 64));
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word >= WORDS {
                return None;
            }
            bits = self.occupied[level][word];
        }
    }

    /// Purges lazily-cancelled entries from one slot, keeping the bitmap
    /// and stored-count in sync.
    fn purge_slot(&mut self, level: usize, idx: usize) {
        let cancelled = &mut self.cancelled;
        let slot = &mut self.levels[level][idx];
        if cancelled.is_empty() || slot.is_empty() {
            return;
        }
        let before = slot.len();
        slot.retain(|e| !cancelled.remove(&e.seq));
        self.stored -= before - slot.len();
        if slot.is_empty() {
            self.occupied[level][idx / 64] &= !(1u64 << (idx % 64));
        }
    }

    /// Re-establishes the `next` invariant by extracting the minimum live
    /// entry from the wheel, cascading higher-level slots as needed.
    fn refill(&mut self) {
        debug_assert!(self.next.is_none());
        'search: while self.stored > 0 {
            // Level 0: the slot holding `current` (plus anything scheduled
            // "into the past") and the remainder of its 256-tick window.
            let mut idx = (self.current & MASK) as usize;
            while let Some(found) = self.next_occupied(0, idx) {
                self.purge_slot(0, found);
                let slot = &mut self.levels[0][found];
                if slot.is_empty() {
                    idx = found + 1;
                    if idx >= SLOTS {
                        break;
                    }
                    continue;
                }
                let min = slot
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.key())
                    .map(|(i, _)| i)
                    .expect("non-empty slot");
                let entry = slot.remove(min);
                if slot.is_empty() {
                    self.occupied[0][found / 64] &= !(1u64 << (found % 64));
                }
                self.stored -= 1;
                self.current = (self.current & !MASK) | found as u64;
                self.next = Some(entry);
                return;
            }
            // Level 0 exhausted for this rotation: cascade the earliest
            // occupied higher-level slot down and rescan.
            for level in 1..LEVELS {
                let cur_idx = ((self.current >> (BITS * level)) & MASK) as usize;
                if let Some(found) = self.next_occupied(level, cur_idx) {
                    self.purge_slot(level, found);
                    if self.levels[level][found].is_empty() {
                        // The slot held only lazily-cancelled entries;
                        // restart the pass (the bitmap now skips it).
                        continue 'search;
                    }
                    // Advance to the slot's start; its entries re-bucket
                    // into levels below.
                    let span = BITS * (level + 1);
                    let prefix = if span >= 64 {
                        0
                    } else {
                        self.current & (!0u64 << span)
                    };
                    self.current = prefix | ((found as u64) << (BITS * level));
                    let entries = std::mem::take(&mut self.levels[level][found]);
                    self.occupied[level][found / 64] &= !(1u64 << (found % 64));
                    self.stored -= entries.len();
                    for e in entries {
                        self.place(e);
                    }
                    continue 'search;
                }
            }
            // Every stored entry sits at or after `current` by
            // construction, so reaching here means this pass's purges
            // removed the last lazily-cancelled entries.
            assert_eq!(self.stored, 0, "stored events but no occupied slot");
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn pops_in_time_order_across_levels() {
        let mut w = TimingWheel::new();
        // Times spanning several wheel levels, scheduled out of order.
        let times = [
            3u64,
            1 << 9,
            (1 << 17) + 5,
            1 << 30,
            (1 << 45) + 123,
            u64::MAX,
            7,
            1 << 9,
        ];
        for (i, &n) in times.iter().enumerate() {
            w.schedule(t(n), i);
        }
        let mut sorted: Vec<(u64, usize)> = times.iter().copied().zip(0..).collect();
        sorted.sort_unstable();
        let got: Vec<(SimTime, usize)> = std::iter::from_fn(|| w.pop()).collect();
        let want: Vec<(SimTime, usize)> = sorted.into_iter().map(|(n, i)| (t(n), i)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut w = TimingWheel::new();
        for i in 0..100 {
            w.schedule(t(5_000_000), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_pop_keeps_fifo_at_equal_time() {
        let mut w = TimingWheel::new();
        w.schedule(t(10), 0);
        w.schedule(t(10), 1);
        assert_eq!(w.pop().unwrap().1, 0);
        // Scheduling more events at the already-started instant keeps FIFO.
        w.schedule(t(10), 2);
        assert_eq!(w.pop().unwrap().1, 1);
        assert_eq!(w.pop().unwrap().1, 2);
        assert!(w.pop().is_none());
    }

    #[test]
    fn cancel_semantics_match_the_queue() {
        let mut w = TimingWheel::new();
        let a = w.schedule(t(1), "a");
        let b = w.schedule(t(2), "b");
        assert!(w.cancel(a));
        assert!(!w.cancel(a), "double cancel is a no-op");
        assert_eq!(w.len(), 1);
        assert_eq!(w.peek_time(), Some(t(2)));
        assert_eq!(w.pop().unwrap().1, "b");
        assert!(!w.cancel(b), "cancel after fire is a no-op");
        assert!(w.is_empty());
    }

    #[test]
    fn cancelling_a_buried_entry_is_lazy_but_invisible() {
        let mut w = TimingWheel::new();
        w.schedule(t(1), 1);
        let mid = w.schedule(t(1 << 20), 2);
        w.schedule(t(1 << 40), 3);
        assert!(w.cancel(mid));
        assert_eq!(w.len(), 2);
        let got: Vec<i32> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(got, vec![1, 3]);
    }

    #[test]
    fn peek_is_shared_borrow_and_stable() {
        let mut w = TimingWheel::new();
        w.schedule(t(500), ());
        w.schedule(t(100), ());
        let shared: &TimingWheel<()> = &w;
        assert_eq!(shared.peek_time(), Some(t(100)));
        assert_eq!(shared.peek_time(), Some(t(100)));
    }

    #[test]
    fn scheduling_before_the_last_pop_still_fires_in_time_order() {
        let mut w = TimingWheel::new();
        w.schedule(t(1 << 24), "far");
        assert_eq!(w.pop().unwrap().1, "far");
        // "Past" relative to the wheel's cursor; the heap-queue oracle
        // happily fires such events next, so the wheel must too.
        w.schedule(t(3), "past-a");
        w.schedule(t(1), "past-b");
        assert_eq!(w.pop().unwrap().1, "past-b");
        assert_eq!(w.pop().unwrap().1, "past-a");
    }

    #[test]
    fn large_event_population_drains_sorted() {
        let mut w = TimingWheel::new();
        // A deterministic pseudo-random scatter over ~10 s of nanos.
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        let mut times = Vec::new();
        for i in 0..50_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let time = x % 10_000_000_000;
            times.push(time);
            w.schedule(t(time), i);
        }
        assert_eq!(w.len(), 50_000);
        let mut last = (0u64, 0u64);
        let mut seen = 0usize;
        while let Some((time, i)) = w.pop() {
            let key = (time.as_nanos(), i);
            assert!(
                key > last || seen == 0,
                "out of order: {key:?} after {last:?}"
            );
            assert_eq!(time.as_nanos(), times[i as usize]);
            last = key;
            seen += 1;
        }
        assert_eq!(seen, 50_000);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::event::proptests::{arb_op, Op};
    use crate::event::EventQueue;
    use proptest::prelude::*;

    /// Replays one op list against both schedulers, demanding identical
    /// observable behaviour (pop results, cancel results, peeks, lengths).
    fn check_against_oracle(ops: Vec<Op>) -> Result<(), TestCaseError> {
        let mut wheel: TimingWheel<u64> = TimingWheel::new();
        let mut oracle: EventQueue<u64> = EventQueue::new();
        let mut ids: Vec<(EventId, EventId)> = Vec::new();
        let mut payload = 0u64;
        for op in ops {
            match op {
                Op::Schedule(t) => {
                    let time = SimTime::from_nanos(t);
                    let w = wheel.schedule(time, payload);
                    let o = oracle.schedule(time, payload);
                    ids.push((w, o));
                    payload += 1;
                }
                Op::CancelNth(k) => {
                    if ids.is_empty() {
                        continue;
                    }
                    let (w, o) = ids[k % ids.len()];
                    prop_assert_eq!(wheel.cancel(w), oracle.cancel(o));
                }
                Op::Pop => {
                    prop_assert_eq!(wheel.pop(), oracle.pop());
                }
                Op::Peek => {
                    prop_assert_eq!(wheel.peek_time(), oracle.peek_time());
                }
            }
            prop_assert_eq!(wheel.len(), oracle.len());
            prop_assert_eq!(wheel.peek_time(), oracle.peek_time());
        }
        loop {
            let (w, o) = (wheel.pop(), oracle.pop());
            prop_assert_eq!(&w, &o);
            if w.is_none() {
                break;
            }
        }
        Ok(())
    }

    /// Times drawn across the full clock so every wheel level and cascade
    /// path gets exercised, not just the low bytes.
    fn arb_wide_op() -> impl Strategy<Value = Op> {
        let wide_time = prop_oneof![
            0u64..1000,
            1_000_000u64..1_000_000_000,
            0u64..1 << 40,
            Just(u64::MAX),
            any::<u64>(),
        ];
        prop_oneof![
            wide_time.prop_map(Op::Schedule),
            (0usize..64).prop_map(Op::CancelNth),
            Just(Op::Pop),
            Just(Op::Peek),
        ]
    }

    proptest! {
        /// The wheel must be observationally identical to the retained
        /// `EventQueue` oracle under the queue's own op model.
        #[test]
        fn wheel_matches_event_queue_oracle(
            ops in proptest::collection::vec(arb_op(), 1..200),
        ) {
            check_against_oracle(ops)?;
        }

        /// Same, with firing times spread over the whole 64-bit clock.
        #[test]
        fn wheel_matches_oracle_across_all_levels(
            ops in proptest::collection::vec(arb_wide_op(), 1..200),
        ) {
            check_against_oracle(ops)?;
        }
    }
}
