//! Deterministic, forkable randomness for reproducible simulation runs.
//!
//! Every experiment in the reproduction is driven by a single `u64` master
//! seed. [`SimRng`] wraps a counter-seeded ChaCha-free PRNG built on
//! SplitMix64 + xoshiro256**, so results are identical across platforms and
//! `rand` versions. Independent sub-streams are created with [`SimRng::fork`],
//! keyed by a string label and an index, so adding a new consumer of
//! randomness never perturbs existing streams — the property that makes
//! "same seed ⇒ same figures" hold as the codebase evolves.

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64 step; used for seeding and label hashing.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a label, used to derive fork keys from human-readable names.
#[inline]
fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A deterministic xoshiro256** PRNG with labelled forking.
///
/// Implements [`rand::RngCore`] so it composes with the whole `rand`
/// ecosystem (`gen_range`, `shuffle`, distributions, …).
///
/// # Examples
///
/// ```
/// use jrsnd_sim::rng::SimRng;
/// use rand::{Rng, SeedableRng};
///
/// let mut root = SimRng::seed_from_u64(42);
/// let mut placement = root.fork("placement", 0);
/// let mut jamming = root.fork("jamming", 0);
/// let x: f64 = placement.gen_range(0.0..5000.0);
/// let y: f64 = jamming.gen_range(0.0..5000.0);
/// assert_ne!(x, y); // independent streams
/// // Re-forking with the same label and index replays the same stream.
/// let mut again = root.fork("placement", 0);
/// assert_eq!(again.gen_range(0.0..5000.0), x);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
    /// The key this generator was created from; forks derive from it.
    key: u64,
}

impl SimRng {
    /// Creates a generator from a raw 64-bit key.
    pub fn from_key(key: u64) -> Self {
        let mut sm = key;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s, key }
    }

    /// Derives an independent generator for the sub-stream named by
    /// `label` and `index`.
    ///
    /// Forking does not consume randomness from `self` and is a pure
    /// function of `(self.key, label, index)`.
    pub fn fork(&self, label: &str, index: u64) -> SimRng {
        let mut k = self.key ^ hash_label(label).rotate_left(17);
        k ^= index.wrapping_mul(0xA24B_AED4_963E_E407);
        let mut sm = k;
        // One extra scramble so fork keys never collide with raw seeds.
        let key = splitmix64(&mut sm) ^ 0x9E6C_63D0_876A_68EE;
        SimRng::from_key(key)
    }

    /// The key this generator was constructed from.
    pub fn key(&self) -> u64 {
        self.key
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for SimRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SimRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SimRng::from_key(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        SimRng::from_key(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn hash_label_matches_fnv1a_64_reference_vectors() {
        // Known-answer vectors for FNV-1a 64 (offset basis
        // 0xcbf29ce484222325, prime 0x100000001b3). A mistyped prime
        // once shipped here; these pins make sure it cannot come back.
        assert_eq!(hash_label(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash_label("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash_label("foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(8);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let mut root = SimRng::seed_from_u64(99);
        let before: Vec<u64> = {
            let mut f = root.fork("x", 3);
            (0..8).map(|_| f.next_u64()).collect()
        };
        // Consume a lot from the parent, then fork again.
        for _ in 0..1000 {
            root.next_u64();
        }
        let after: Vec<u64> = {
            let mut f = root.fork("x", 3);
            (0..8).map(|_| f.next_u64()).collect()
        };
        assert_eq!(before, after);
    }

    #[test]
    fn fork_labels_and_indices_separate_streams() {
        let root = SimRng::seed_from_u64(1);
        let mut seen = HashSet::new();
        for label in ["a", "b", "placement", "jam"] {
            for idx in 0..16u64 {
                let mut f = root.fork(label, idx);
                assert!(seen.insert(f.next_u64()), "stream collision");
            }
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
            let k: u32 = rng.gen_range(3..10);
            assert!((3..10).contains(&k));
        }
    }

    #[test]
    fn uniformity_sanity_check() {
        // Chi-square-ish sanity: 16 buckets over 16k draws should each get
        // roughly 1000 hits; allow generous slack.
        let mut rng = SimRng::seed_from_u64(1234);
        let mut buckets = [0u32; 16];
        for _ in 0..16_000 {
            buckets[(rng.next_u64() >> 60) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket count {b} out of range");
        }
    }
}
