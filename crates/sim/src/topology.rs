//! Physical-neighbor topology: who is within transmission range of whom.
//!
//! JR-SND distinguishes *physical* neighbors (within range) from *logical*
//! neighbors (mutually discovered); this module computes the former from a
//! position snapshot and provides the graph operations M-NDP needs (ν-hop
//! reachability, common-neighbor queries).

use crate::geom::{Field, Point};
use crate::grid::UniformGrid;
use std::collections::VecDeque;

/// An undirected graph over nodes `0..n`, stored as sorted adjacency lists.
///
/// # Examples
///
/// ```
/// use jrsnd_sim::topology::Graph;
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// assert!(g.has_edge(1, 0));
/// assert_eq!(g.degree(1), 2);
/// assert!(g.within_hops(0, 3, 3));
/// assert!(!g.within_hops(0, 3, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<usize>>,
    edges: usize,
}

impl Graph {
    /// Creates an empty graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Builds a graph from an edge iterator; duplicate and self edges are
    /// ignored.
    pub fn from_edges<I: IntoIterator<Item = (usize, usize)>>(n: usize, edges: I) -> Self {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has zero nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Adds the undirected edge `(u, v)`. Returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` or either endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(u != v, "self edges are not allowed (node {u})");
        assert!(
            u < self.len() && v < self.len(),
            "edge ({u},{v}) out of range"
        );
        match self.adj[u].binary_search(&v) {
            Ok(_) => false,
            Err(iu) => {
                self.adj[u].insert(iu, v);
                let iv = self.adj[v].binary_search(&u).unwrap_err();
                self.adj[v].insert(iv, u);
                self.edges += 1;
                true
            }
        }
    }

    /// Removes the undirected edge `(u, v)`. Returns `true` if it existed.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        if u >= self.len() || v >= self.len() {
            return false;
        }
        match self.adj[u].binary_search(&v) {
            Ok(iu) => {
                self.adj[u].remove(iu);
                let iv = self.adj[v].binary_search(&u).unwrap();
                self.adj[v].remove(iv);
                self.edges -= 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Whether the undirected edge `(u, v)` is present.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.len() && self.adj[u].binary_search(&v).is_ok()
    }

    /// The sorted neighbor list of `u`.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Mean degree over all nodes (the paper's `g`).
    pub fn mean_degree(&self) -> f64 {
        if self.adj.is_empty() {
            return 0.0;
        }
        2.0 * self.edges as f64 / self.adj.len() as f64
    }

    /// Iterates over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
    }

    /// Common neighbors of `u` and `v` (sorted merge of the two lists).
    pub fn common_neighbors(&self, u: usize, v: usize) -> Vec<usize> {
        let (a, b) = (&self.adj[u], &self.adj[v]);
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// BFS distances from `src` out to `max_hops`; unreached nodes get
    /// `usize::MAX`.
    pub fn bfs_within(&self, src: usize, max_hops: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.len()];
        dist[src] = 0;
        let mut q = VecDeque::from([src]);
        while let Some(u) = q.pop_front() {
            if dist[u] == max_hops {
                continue;
            }
            for &v in &self.adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// Whether `dst` is reachable from `src` in at most `max_hops` hops.
    pub fn within_hops(&self, src: usize, dst: usize, max_hops: usize) -> bool {
        if src == dst {
            return true;
        }
        // Early-exit BFS.
        let mut dist = vec![usize::MAX; self.len()];
        dist[src] = 0;
        let mut q = VecDeque::from([src]);
        while let Some(u) = q.pop_front() {
            if dist[u] == max_hops {
                continue;
            }
            for &v in &self.adj[u] {
                if dist[v] == usize::MAX {
                    if v == dst {
                        return true;
                    }
                    dist[v] = dist[u] + 1;
                    q.push_back(v);
                }
            }
        }
        false
    }

    /// One shortest path from `src` to `dst` with at most `max_hops` hops,
    /// if any, as the node sequence `src, …, dst`.
    pub fn shortest_path_within(
        &self,
        src: usize,
        dst: usize,
        max_hops: usize,
    ) -> Option<Vec<usize>> {
        if src == dst {
            return Some(vec![src]);
        }
        let mut parent = vec![usize::MAX; self.len()];
        let mut dist = vec![usize::MAX; self.len()];
        dist[src] = 0;
        let mut q = VecDeque::from([src]);
        while let Some(u) = q.pop_front() {
            if dist[u] == max_hops {
                continue;
            }
            for &v in &self.adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    parent[v] = u;
                    if v == dst {
                        let mut path = vec![dst];
                        let mut cur = dst;
                        while cur != src {
                            cur = parent[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    q.push_back(v);
                }
            }
        }
        None
    }
}

/// Builds the physical-neighbor graph of a position snapshot: an edge for
/// every pair within `range` metres.
///
/// Uses a uniform grid, so the cost is O(n·g) rather than O(n²).
///
/// # Examples
///
/// ```
/// use jrsnd_sim::geom::{Field, Point};
/// use jrsnd_sim::topology::physical_graph;
///
/// let field = Field::new(100.0, 100.0);
/// let pts = vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0), Point::new(50.0, 50.0)];
/// let g = physical_graph(field, &pts, 10.0);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(0, 2));
/// ```
pub fn physical_graph(field: Field, positions: &[Point], range: f64) -> Graph {
    assert!(range > 0.0, "transmission range must be positive");
    let grid = UniformGrid::from_points(field, range, positions);
    let mut g = Graph::new(positions.len());
    for (u, &p) in positions.iter().enumerate() {
        for (v, _) in grid.within_points(p, range) {
            if v > u {
                g.add_edge(u, v);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use rand::SeedableRng;

    #[test]
    fn add_remove_edge_bookkeeping() {
        let mut g = Graph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0)); // duplicate, either orientation
        assert_eq!(g.edge_count(), 1);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.edge_count(), 0);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn mean_degree_of_path() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.mean_degree(), 1.5);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn common_neighbors_sorted_merge() {
        let g = Graph::from_edges(6, [(0, 2), (0, 3), (0, 4), (1, 3), (1, 4), (1, 5)]);
        assert_eq!(g.common_neighbors(0, 1), vec![3, 4]);
        assert_eq!(g.common_neighbors(2, 5), Vec::<usize>::new());
    }

    #[test]
    fn bfs_distances_on_path_graph() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let d = g.bfs_within(0, 10);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d2 = g.bfs_within(0, 2);
        assert_eq!(d2, vec![0, 1, 2, usize::MAX, usize::MAX]);
    }

    #[test]
    fn within_hops_respects_bound() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert!(g.within_hops(0, 0, 0));
        assert!(g.within_hops(0, 2, 2));
        assert!(!g.within_hops(0, 3, 2));
        assert!(!g.within_hops(0, 4, 3));
        assert!(g.within_hops(0, 4, 4));
    }

    #[test]
    fn shortest_path_is_shortest() {
        // Triangle plus pendant: 0-1, 1-2, 0-2, 2-3.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]);
        let p = g.shortest_path_within(0, 3, 5).unwrap();
        assert_eq!(p, vec![0, 2, 3]);
        assert!(g.shortest_path_within(0, 3, 1).is_none());
        assert_eq!(g.shortest_path_within(1, 1, 0).unwrap(), vec![1]);
    }

    #[test]
    fn physical_graph_matches_brute_force() {
        let field = Field::new(800.0, 800.0);
        let mut rng = SimRng::seed_from_u64(77);
        let pts = field.sample_uniform_n(300, &mut rng);
        let range = 90.0;
        let g = physical_graph(field, &pts, range);
        for u in 0..pts.len() {
            for v in (u + 1)..pts.len() {
                let expect = pts[u].distance(pts[v]) <= range;
                assert_eq!(g.has_edge(u, v), expect, "pair ({u},{v})");
            }
        }
    }

    #[test]
    fn paper_scale_degree_is_near_analytic() {
        let field = Field::paper_default();
        let mut rng = SimRng::seed_from_u64(5);
        let pts = field.sample_uniform_n(2000, &mut rng);
        let g = physical_graph(field, &pts, 300.0);
        let analytic = field.expected_degree(2000, 300.0);
        // Border effects push the empirical mean a bit below the analytic
        // disk value; accept a 15% band.
        let ratio = g.mean_degree() / analytic;
        assert!((0.80..=1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn edges_iterator_is_consistent() {
        let g = Graph::from_edges(5, [(0, 1), (3, 2), (4, 0)]);
        let mut got: Vec<(usize, usize)> = g.edges().collect();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1), (0, 4), (2, 3)]);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    #[should_panic(expected = "self edges")]
    fn self_edge_rejected() {
        Graph::new(2).add_edge(1, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn bfs_dist_is_metric_consistent(
            n in 2usize..30,
            edges in proptest::collection::vec((0usize..30, 0usize..30), 0..80),
        ) {
            let edges: Vec<(usize, usize)> = edges
                .into_iter()
                .filter(|(u, v)| u != v && *u < n && *v < n)
                .collect();
            let g = Graph::from_edges(n, edges);
            let d = g.bfs_within(0, n);
            // Triangle inequality over edges: |d(u) - d(v)| <= 1 for any edge.
            for (u, v) in g.edges() {
                if d[u] != usize::MAX && d[v] != usize::MAX {
                    let (lo, hi) = (d[u].min(d[v]), d[u].max(d[v]));
                    prop_assert!(hi - lo <= 1);
                }
            }
            // within_hops agrees with bfs distances.
            #[allow(clippy::needless_range_loop)] // v doubles as the node id
            for v in 0..n {
                let reach = g.within_hops(0, v, n);
                prop_assert_eq!(reach, d[v] != usize::MAX);
            }
        }

        #[test]
        fn shortest_path_endpoints_and_length(
            n in 2usize..20,
            edges in proptest::collection::vec((0usize..20, 0usize..20), 0..60),
            max_hops in 0usize..6,
        ) {
            let edges: Vec<(usize, usize)> = edges
                .into_iter()
                .filter(|(u, v)| u != v && *u < n && *v < n)
                .collect();
            let g = Graph::from_edges(n, edges);
            if let Some(p) = g.shortest_path_within(0, n - 1, max_hops) {
                prop_assert_eq!(*p.first().unwrap(), 0);
                prop_assert_eq!(*p.last().unwrap(), n - 1);
                prop_assert!(p.len() - 1 <= max_hops || n == 1);
                for w in p.windows(2) {
                    prop_assert!(g.has_edge(w[0], w[1]));
                }
            }
        }
    }
}
