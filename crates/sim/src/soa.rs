//! Struct-of-arrays node state and arena-allocated topology for
//! 100k+-node runs.
//!
//! At the paper's 2000-node scale, `Vec<Point>` snapshots and
//! `Vec<Vec<usize>>` adjacency are fine; at 100×–500× that, the pointer
//! chasing and per-node allocations dominate. This module provides the
//! scale-friendly representations:
//!
//! * [`NodeStore`] — positions as two parallel `f64` columns (SoA), so
//!   sweeps over one coordinate stream contiguously;
//! * [`CsrGraph`] — the physical-neighbor graph in compressed-sparse-row
//!   form: one offsets column plus one shared edge arena, zero per-node
//!   allocations, `u32` node ids;
//! * [`DynamicTopology`] — an incrementally maintained neighbor graph
//!   over a [`UniformGrid`]: relocating one node costs
//!   O(degree + cell occupancy) instead of the O(n·g) full rebuild that
//!   `physical_graph` performs, so a mobility refresh is O(moved), not
//!   O(n).

use crate::geom::{Field, Point};
use crate::grid::UniformGrid;
use crate::rng::SimRng;
use crate::topology::Graph;

/// Node positions stored as parallel coordinate columns.
///
/// # Examples
///
/// ```
/// use jrsnd_sim::geom::{Field, Point};
/// use jrsnd_sim::soa::NodeStore;
///
/// let store = NodeStore::from_points(&[Point::new(1.0, 2.0), Point::new(3.0, 4.0)]);
/// assert_eq!(store.len(), 2);
/// assert_eq!(store.position(1), Point::new(3.0, 4.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeStore {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl NodeStore {
    /// An empty store with room for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        NodeStore {
            xs: Vec::with_capacity(n),
            ys: Vec::with_capacity(n),
        }
    }

    /// Columnizes a point slice.
    pub fn from_points(points: &[Point]) -> Self {
        NodeStore {
            xs: points.iter().map(|p| p.x).collect(),
            ys: points.iter().map(|p| p.y).collect(),
        }
    }

    /// Samples `n` i.i.d. uniform positions, drawing the exact same
    /// stream as [`Field::sample_uniform_n`] — the two representations
    /// are interchangeable under one seed.
    pub fn sample_uniform(field: Field, n: usize, rng: &mut SimRng) -> Self {
        let mut store = NodeStore::with_capacity(n);
        for _ in 0..n {
            store.push(field.sample_uniform(rng));
        }
        store
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Appends a node, returning its index.
    pub fn push(&mut self, p: Point) -> usize {
        self.xs.push(p.x);
        self.ys.push(p.y);
        self.xs.len() - 1
    }

    /// Position of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn position(&self, i: usize) -> Point {
        Point::new(self.xs[i], self.ys[i])
    }

    /// Overwrites node `i`'s position.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_position(&mut self, i: usize, p: Point) {
        self.xs[i] = p.x;
        self.ys[i] = p.y;
    }

    /// The x-coordinate column.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The y-coordinate column.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Iterates positions in node order.
    pub fn iter(&self) -> impl Iterator<Item = Point> + '_ {
        self.xs
            .iter()
            .zip(&self.ys)
            .map(|(&x, &y)| Point::new(x, y))
    }

    /// Materializes the positions as a point vector (compatibility with
    /// the AoS API).
    pub fn to_points(&self) -> Vec<Point> {
        self.iter().collect()
    }
}

/// The physical-neighbor graph in compressed-sparse-row form.
///
/// Equivalent to [`crate::topology::physical_graph`] but with the whole
/// adjacency in one arena: `offsets[u]..offsets[u + 1]` indexes `u`'s
/// sorted neighbor slice inside a single `targets` buffer. Node ids are
/// `u32`, halving the adjacency footprint at 100k+ nodes.
///
/// # Examples
///
/// ```
/// use jrsnd_sim::geom::{Field, Point};
/// use jrsnd_sim::soa::{CsrGraph, NodeStore};
///
/// let store = NodeStore::from_points(&[
///     Point::new(0.0, 0.0),
///     Point::new(5.0, 0.0),
///     Point::new(50.0, 50.0),
/// ]);
/// let g = CsrGraph::build(Field::new(100.0, 100.0), &store, 10.0);
/// assert_eq!(g.neighbors(0), &[1]);
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl CsrGraph {
    /// Builds the CSR physical graph of a snapshot: an edge for every
    /// pair within `range` metres. One grid query pass collects the
    /// half-edges, a counting pass lays out the arena.
    ///
    /// # Panics
    ///
    /// Panics if `range` is non-positive or the store holds more than
    /// `u32::MAX` nodes.
    pub fn build(field: Field, store: &NodeStore, range: f64) -> Self {
        assert!(range > 0.0, "transmission range must be positive");
        let n = store.len();
        assert!(u32::try_from(n).is_ok(), "CsrGraph is limited to u32 ids");
        let mut grid = UniformGrid::new(field, range);
        for (i, p) in store.iter().enumerate() {
            grid.insert(i, p);
        }
        // Half-edge pass: (u, v) with u < v, in grid iteration order.
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut degree = vec![0u32; n];
        for u in 0..n {
            let p = store.position(u);
            for (v, _) in grid.within_points(p, range) {
                if v > u {
                    pairs.push((u as u32, v as u32));
                    degree[u] += 1;
                    degree[v] += 1;
                }
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        // Fill both directions via per-node cursors, then sort each row.
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0u32; acc as usize];
        for &(u, v) in &pairs {
            targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        for u in 0..n {
            let (a, b) = (offsets[u] as usize, offsets[u + 1] as usize);
            targets[a..b].sort_unstable();
        }
        CsrGraph { offsets, targets }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the graph has zero nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sorted neighbor slice of `u`.
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.targets[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Mean degree over all nodes.
    pub fn mean_degree(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.targets.len() as f64 / self.len() as f64
    }

    /// Whether the undirected edge `(u, v)` is present.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.len() && self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// Iterates all undirected edges `(u, v)` with `u < v`, ascending in
    /// `u` and then `v` — the canonical pair order the sharded
    /// Monte-Carlo pipeline folds in.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.len() as u32).flat_map(move |u| {
            self.neighbors(u as usize)
                .iter()
                .copied()
                .filter(move |&v| v > u)
                .map(move |v| (u, v))
        })
    }

    /// Converts to the adjacency-list [`Graph`] (for equivalence tests
    /// and small-scale callers).
    pub fn to_graph(&self) -> Graph {
        Graph::from_edges(
            self.len(),
            self.edges().map(|(u, v)| (u as usize, v as usize)),
        )
    }
}

/// An incrementally maintained physical-neighbor graph.
///
/// Holds an SoA position store, a [`UniformGrid`] index, and sorted
/// adjacency lists, all updated in place when nodes move. A call to
/// [`DynamicTopology::advance`] with a fresh position snapshot costs
/// O(moved · (degree + cell occupancy)) — the stationary majority of a
/// mobility step is never touched, unlike a `physical_graph` rebuild.
///
/// # Examples
///
/// ```
/// use jrsnd_sim::geom::{Field, Point};
/// use jrsnd_sim::soa::DynamicTopology;
///
/// let field = Field::new(100.0, 100.0);
/// let pts = [Point::new(0.0, 0.0), Point::new(5.0, 0.0), Point::new(90.0, 90.0)];
/// let mut topo = DynamicTopology::new(field, &pts, 10.0);
/// assert!(topo.has_edge(0, 1));
/// topo.relocate(2, Point::new(12.0, 0.0));
/// assert!(topo.has_edge(1, 2));
/// assert_eq!(topo.edge_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicTopology {
    range: f64,
    store: NodeStore,
    grid: UniformGrid,
    adj: Vec<Vec<usize>>,
    edges: usize,
}

impl DynamicTopology {
    /// Builds the topology of an initial snapshot (full O(n·g) pass —
    /// every later refresh is incremental).
    ///
    /// # Panics
    ///
    /// Panics if `range` is non-positive.
    pub fn new(field: Field, positions: &[Point], range: f64) -> Self {
        assert!(range > 0.0, "transmission range must be positive");
        let store = NodeStore::from_points(positions);
        let grid = UniformGrid::from_points(field, range, positions);
        let mut adj = vec![Vec::new(); positions.len()];
        let mut edges = 0;
        for (u, &p) in positions.iter().enumerate() {
            for (v, _) in grid.within_points(p, range) {
                if v > u {
                    adj[u].push(v);
                    adj[v].push(u);
                    edges += 1;
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        DynamicTopology {
            range,
            store,
            grid,
            adj,
            edges,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the topology tracks zero nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Current position of `node`.
    pub fn position(&self, node: usize) -> Point {
        self.store.position(node)
    }

    /// The sorted neighbor list of `node`.
    pub fn neighbors(&self, node: usize) -> &[usize] {
        &self.adj[node]
    }

    /// Whether `(u, v)` are within range of each other.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.len() && self.adj[u].binary_search(&v).is_ok()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Mean degree (the paper's `g`).
    pub fn mean_degree(&self) -> f64 {
        if self.adj.is_empty() {
            return 0.0;
        }
        2.0 * self.edges as f64 / self.adj.len() as f64
    }

    /// Iterates all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
    }

    /// Moves one node, updating only the edges incident to it. Cost is
    /// O(old degree + new degree + cell occupancy); the rest of the
    /// graph is untouched.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn relocate(&mut self, node: usize, to: Point) {
        let from = self.store.position(node);
        // Detach from every current neighbor.
        let old = std::mem::take(&mut self.adj[node]);
        for &v in &old {
            let i = self.adj[v].binary_search(&node).expect("symmetric edge");
            self.adj[v].remove(i);
        }
        self.edges -= old.len();
        // Re-bucket and reattach at the new position.
        assert!(self.grid.relocate(node, from, to), "node missing from grid");
        self.store.set_position(node, to);
        let mut fresh: Vec<usize> = self
            .grid
            .within_points(to, self.range)
            .map(|(v, _)| v)
            .filter(|&v| v != node)
            .collect();
        fresh.sort_unstable();
        for &v in &fresh {
            let i = self.adj[v].binary_search(&node).unwrap_err();
            self.adj[v].insert(i, node);
        }
        self.edges += fresh.len();
        self.adj[node] = fresh;
    }

    /// Applies a fresh position snapshot, relocating only the nodes that
    /// actually moved. Returns how many moved.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length differs from the node count.
    pub fn advance(&mut self, positions: &[Point]) -> usize {
        assert_eq!(positions.len(), self.len(), "snapshot size mismatch");
        let mut moved = 0;
        for (i, &p) in positions.iter().enumerate() {
            if self.store.position(i) != p {
                self.relocate(i, p);
                moved += 1;
            }
        }
        moved
    }

    /// Materializes the current topology as a [`Graph`] (for equivalence
    /// tests and callers of the AoS API).
    pub fn to_graph(&self) -> Graph {
        Graph::from_edges(self.len(), self.edges())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::{Mobility, RandomWaypoint};
    use crate::time::SimTime;
    use crate::topology::physical_graph;
    use rand::SeedableRng;

    #[test]
    fn node_store_roundtrips_points() {
        let pts = vec![Point::new(1.5, 2.5), Point::new(3.0, 4.0)];
        let mut store = NodeStore::from_points(&pts);
        assert_eq!(store.to_points(), pts);
        store.set_position(0, Point::new(9.0, 9.0));
        assert_eq!(store.position(0), Point::new(9.0, 9.0));
        assert_eq!(store.xs(), &[9.0, 3.0]);
        assert_eq!(store.ys(), &[9.0, 4.0]);
    }

    #[test]
    fn soa_sampling_matches_aos_sampling() {
        let field = Field::new(1000.0, 800.0);
        let mut a = SimRng::seed_from_u64(9);
        let mut b = SimRng::seed_from_u64(9);
        let store = NodeStore::sample_uniform(field, 64, &mut a);
        let points = field.sample_uniform_n(64, &mut b);
        assert_eq!(store.to_points(), points);
    }

    #[test]
    fn csr_matches_physical_graph() {
        let field = Field::new(1200.0, 900.0);
        let mut rng = SimRng::seed_from_u64(31);
        let points = field.sample_uniform_n(400, &mut rng);
        let range = 100.0;
        let reference = physical_graph(field, &points, range);
        let csr = CsrGraph::build(field, &NodeStore::from_points(&points), range);
        assert_eq!(csr.len(), reference.len());
        assert_eq!(csr.edge_count(), reference.edge_count());
        assert_eq!(csr.mean_degree(), reference.mean_degree());
        for u in 0..points.len() {
            let want: Vec<u32> = reference.neighbors(u).iter().map(|&v| v as u32).collect();
            assert_eq!(csr.neighbors(u), want.as_slice(), "node {u}");
        }
        assert_eq!(csr.to_graph(), reference);
    }

    #[test]
    fn csr_edges_are_canonically_ordered() {
        let field = Field::new(500.0, 500.0);
        let mut rng = SimRng::seed_from_u64(7);
        let store = NodeStore::sample_uniform(field, 120, &mut rng);
        let csr = CsrGraph::build(field, &store, 80.0);
        let edges: Vec<(u32, u32)> = csr.edges().collect();
        let mut sorted = edges.clone();
        sorted.sort_unstable();
        assert_eq!(edges, sorted, "edges() must ascend in (u, v)");
        assert!(edges.iter().all(|&(u, v)| u < v));
        assert_eq!(edges.len(), csr.edge_count());
        for &(u, v) in edges.iter().take(50) {
            assert!(csr.has_edge(u as usize, v as usize));
            assert!(csr.has_edge(v as usize, u as usize));
        }
        assert!(!csr.has_edge(0, 0));
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let field = Field::new(10.0, 10.0);
        let empty = CsrGraph::build(field, &NodeStore::default(), 1.0);
        assert!(empty.is_empty());
        assert_eq!(empty.mean_degree(), 0.0);
        let one = CsrGraph::build(field, &NodeStore::from_points(&[Point::new(5.0, 5.0)]), 1.0);
        assert_eq!(one.len(), 1);
        assert_eq!(one.edge_count(), 0);
        assert_eq!(one.neighbors(0), &[] as &[u32]);
    }

    #[test]
    fn relocate_updates_exactly_the_incident_edges() {
        let field = Field::new(100.0, 100.0);
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(9.0, 0.0),
            Point::new(90.0, 90.0),
        ];
        let mut topo = DynamicTopology::new(field, &pts, 6.0);
        assert!(topo.has_edge(0, 1) && topo.has_edge(1, 2) && !topo.has_edge(0, 2));
        assert_eq!(topo.edge_count(), 2);
        topo.relocate(1, Point::new(90.0, 85.0));
        assert!(!topo.has_edge(0, 1) && !topo.has_edge(1, 2));
        assert!(topo.has_edge(1, 3));
        assert_eq!(topo.edge_count(), 1);
        assert_eq!(topo.position(1), Point::new(90.0, 85.0));
    }

    #[test]
    fn incremental_refresh_equals_full_rebuild_under_mobility() {
        let field = Field::new(800.0, 800.0);
        let mut rng = SimRng::seed_from_u64(2011);
        let horizon = SimTime::from_secs(120);
        let model = RandomWaypoint::new(field, 200, 2.0, 12.0, 1.0, horizon, &mut rng);
        let range = 90.0;
        let t0 = model.snapshot(SimTime::ZERO);
        let mut topo = DynamicTopology::new(field, &t0, range);
        let mut total_moved = 0;
        for step in 1..=12 {
            let t = SimTime::from_secs(step * 10);
            let snap = model.snapshot(t);
            total_moved += topo.advance(&snap);
            let rebuilt = physical_graph(field, &snap, range);
            assert_eq!(topo.to_graph(), rebuilt, "diverged at t = {t:?}");
            assert_eq!(topo.edge_count(), rebuilt.edge_count());
            assert_eq!(topo.mean_degree(), rebuilt.mean_degree());
        }
        assert!(total_moved > 0, "waypoint nodes should move");
    }

    #[test]
    fn advance_skips_stationary_nodes() {
        let field = Field::new(100.0, 100.0);
        let pts = vec![Point::new(10.0, 10.0), Point::new(20.0, 10.0)];
        let mut topo = DynamicTopology::new(field, &pts, 15.0);
        assert_eq!(topo.advance(&pts), 0, "identical snapshot moves nothing");
        let mut shifted = pts.clone();
        shifted[1] = Point::new(20.5, 10.0);
        assert_eq!(topo.advance(&shifted), 1);
        assert!(topo.has_edge(0, 1));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::topology::physical_graph;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Arbitrary relocation interleavings keep the incremental
        /// topology identical to a from-scratch rebuild.
        #[test]
        fn incremental_matches_rebuild(
            seed in 0u64..500,
            n in 2usize..60,
            moves in proptest::collection::vec((0usize..60, 0u16..400, 0u16..400), 1..40),
            range in 20.0f64..150.0,
        ) {
            use rand::SeedableRng;
            let field = Field::new(400.0, 400.0);
            let mut rng = SimRng::seed_from_u64(seed);
            let mut points = field.sample_uniform_n(n, &mut rng);
            let mut topo = DynamicTopology::new(field, &points, range);
            for (k, x, y) in moves {
                let node = k % n;
                let to = Point::new(f64::from(x), f64::from(y));
                points[node] = to;
                topo.relocate(node, to);
                prop_assert_eq!(topo.position(node), to);
            }
            let rebuilt = physical_graph(field, &points, range);
            prop_assert_eq!(topo.to_graph(), rebuilt);
        }
    }
}
