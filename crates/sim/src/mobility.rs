//! Node mobility models.
//!
//! The paper's evaluation samples independent uniform snapshots (Section
//! VI-B), which [`StaticUniform`] reproduces. Because JR-SND's whole point
//! is *frequent re-discovery under mobility*, we additionally provide the
//! classical [`RandomWaypoint`] model so examples and extension experiments
//! can drive discovery epochs from actual motion.

use crate::geom::{Field, Point};
use crate::rng::SimRng;
use crate::time::SimTime;
use rand::Rng;

/// A mobility model: a deterministic trajectory per node.
///
/// Implementations must be pure functions of `(node, time)` after
/// construction so that repeated queries replay identically.
pub trait Mobility {
    /// Number of nodes with trajectories.
    fn len(&self) -> usize;

    /// Whether the model tracks zero nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Position of `node` at virtual time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `node >= self.len()`.
    fn position(&self, node: usize, t: SimTime) -> Point;

    /// Positions of every node at time `t`, in node order.
    fn snapshot(&self, t: SimTime) -> Vec<Point> {
        (0..self.len()).map(|i| self.position(i, t)).collect()
    }
}

/// Nodes frozen at i.i.d. uniform positions — the paper's evaluation setup.
#[derive(Debug, Clone)]
pub struct StaticUniform {
    positions: Vec<Point>,
}

impl StaticUniform {
    /// Samples `n` uniform positions in `field`.
    pub fn new(field: Field, n: usize, rng: &mut SimRng) -> Self {
        StaticUniform {
            positions: field.sample_uniform_n(n, rng),
        }
    }

    /// Wraps explicit positions (e.g. the Fig. 1 scenario).
    pub fn from_positions(positions: Vec<Point>) -> Self {
        StaticUniform { positions }
    }

    /// Borrow the underlying positions.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }
}

impl Mobility for StaticUniform {
    fn len(&self) -> usize {
        self.positions.len()
    }

    fn position(&self, node: usize, _t: SimTime) -> Point {
        self.positions[node]
    }
}

/// One leg of a random-waypoint trajectory.
#[derive(Debug, Clone, Copy)]
struct Leg {
    /// Departure instant (after any pause at `from`).
    depart: SimTime,
    /// Arrival instant at `to`.
    arrive: SimTime,
    from: Point,
    to: Point,
}

/// The random-waypoint model: each node repeatedly picks a uniform waypoint
/// and a uniform speed in `[v_min, v_max]`, travels there in a straight
/// line, pauses, and repeats.
///
/// Trajectories are precomputed out to a horizon so position lookups are a
/// pure binary search — deterministic and `Sync`.
///
/// # Examples
///
/// ```
/// use jrsnd_sim::geom::Field;
/// use jrsnd_sim::mobility::{Mobility, RandomWaypoint};
/// use jrsnd_sim::rng::SimRng;
/// use jrsnd_sim::time::SimTime;
/// use rand::SeedableRng;
///
/// let field = Field::new(1000.0, 1000.0);
/// let mut rng = SimRng::seed_from_u64(1);
/// let rwp = RandomWaypoint::new(field, 10, 1.0, 10.0, 2.0,
///                               SimTime::from_secs(600), &mut rng);
/// let p0 = rwp.position(3, SimTime::from_secs(0));
/// let p1 = rwp.position(3, SimTime::from_secs(300));
/// assert!(field.contains(p0) && field.contains(p1));
/// ```
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    field: Field,
    /// Per-node legs sorted by departure time.
    legs: Vec<Vec<Leg>>,
}

impl RandomWaypoint {
    /// Builds trajectories for `n` nodes out to `horizon`.
    ///
    /// `v_min`/`v_max` are speeds in m/s; `pause_secs` is the dwell time at
    /// each waypoint.
    ///
    /// # Panics
    ///
    /// Panics if `v_min <= 0`, `v_max < v_min`, or `pause_secs < 0`.
    pub fn new(
        field: Field,
        n: usize,
        v_min: f64,
        v_max: f64,
        pause_secs: f64,
        horizon: SimTime,
        rng: &mut SimRng,
    ) -> Self {
        assert!(v_min > 0.0, "v_min must be positive, got {v_min}");
        assert!(v_max >= v_min, "v_max ({v_max}) must be >= v_min ({v_min})");
        assert!(pause_secs >= 0.0, "pause must be non-negative");
        let mut legs = Vec::with_capacity(n);
        for node in 0..n {
            let mut node_rng = rng.fork("rwp-node", node as u64);
            let mut node_legs = Vec::new();
            let mut pos = field.sample_uniform(&mut node_rng);
            let mut now = 0.0f64;
            let horizon_s = horizon.as_secs_f64();
            while now <= horizon_s {
                let target = field.sample_uniform(&mut node_rng);
                let speed = if v_max > v_min {
                    node_rng.gen_range(v_min..=v_max)
                } else {
                    v_min
                };
                let depart = now;
                let travel = pos.distance(target) / speed;
                let arrive = depart + travel;
                node_legs.push(Leg {
                    depart: SimTime::from_secs_f64(depart),
                    arrive: SimTime::from_secs_f64(arrive),
                    from: pos,
                    to: target,
                });
                pos = target;
                now = arrive + pause_secs;
            }
            legs.push(node_legs);
        }
        RandomWaypoint { field, legs }
    }

    /// The deployment field.
    pub fn field(&self) -> Field {
        self.field
    }
}

impl Mobility for RandomWaypoint {
    fn len(&self) -> usize {
        self.legs.len()
    }

    fn position(&self, node: usize, t: SimTime) -> Point {
        let legs = &self.legs[node];
        // Find the last leg departing at or before t.
        let idx = legs.partition_point(|leg| leg.depart <= t);
        if idx == 0 {
            return legs.first().map_or(Point::default(), |l| l.from);
        }
        let leg = &legs[idx - 1];
        if t >= leg.arrive {
            // Pausing at the waypoint (or past the precomputed horizon:
            // freeze at the last waypoint rather than extrapolate).
            return leg.to;
        }
        let span = (leg.arrive - leg.depart).as_secs_f64();
        let frac = if span == 0.0 {
            1.0
        } else {
            (t - leg.depart).as_secs_f64() / span
        };
        Point::new(
            leg.from.x + (leg.to.x - leg.from.x) * frac,
            leg.from.y + (leg.to.y - leg.from.y) * frac,
        )
    }
}

/// Reference-point group mobility: squads move together.
///
/// Each group has a leader trajectory (random waypoint); members hold a
/// fixed offset from their leader's reference point plus a small bounded
/// jitter re-drawn per leg — the classical RPGM model and a natural fit
/// for the paper's battlefield setting, where a platoon's radios travel
/// as a unit but individual soldiers weave.
#[derive(Debug, Clone)]
pub struct ReferencePointGroup {
    field: Field,
    leaders: RandomWaypoint,
    /// Per node: (group index, offset from the reference point).
    membership: Vec<(usize, Point)>,
    /// Per node: jitter amplitude in metres.
    jitter: f64,
    /// Per node jitter phase seeds for deterministic wobble.
    phases: Vec<(f64, f64)>,
}

impl ReferencePointGroup {
    /// Builds `groups` groups of `group_size` nodes each; leaders follow
    /// random waypoint at `v_min..v_max` m/s with `pause_secs` pauses,
    /// members sit within `spread` metres of the reference point and
    /// wobble by up to `jitter` metres.
    ///
    /// # Panics
    ///
    /// Panics on zero groups/size or non-positive spread.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        field: Field,
        groups: usize,
        group_size: usize,
        v_min: f64,
        v_max: f64,
        pause_secs: f64,
        spread: f64,
        jitter: f64,
        horizon: SimTime,
        rng: &mut SimRng,
    ) -> Self {
        assert!(groups > 0 && group_size > 0, "need at least one node");
        assert!(spread > 0.0 && jitter >= 0.0, "spread must be positive");
        let mut leader_rng = rng.fork("rpgm-leaders", 0);
        let leaders = RandomWaypoint::new(
            field,
            groups,
            v_min,
            v_max,
            pause_secs,
            horizon,
            &mut leader_rng,
        );
        let n = groups * group_size;
        let mut membership = Vec::with_capacity(n);
        let mut phases = Vec::with_capacity(n);
        for node in 0..n {
            let mut node_rng = rng.fork("rpgm-member", node as u64);
            let group = node / group_size;
            let angle = node_rng.gen_range(0.0..std::f64::consts::TAU);
            let radius = spread * node_rng.gen_range(0.0f64..1.0).sqrt();
            membership.push((
                group,
                Point::new(radius * angle.cos(), radius * angle.sin()),
            ));
            phases.push((
                node_rng.gen_range(0.0..std::f64::consts::TAU),
                node_rng.gen_range(0.05..0.3),
            ));
        }
        ReferencePointGroup {
            field,
            leaders,
            membership,
            jitter,
            phases,
        }
    }

    /// The group index of a node.
    pub fn group_of(&self, node: usize) -> usize {
        self.membership[node].0
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.leaders.len()
    }
}

impl Mobility for ReferencePointGroup {
    fn len(&self) -> usize {
        self.membership.len()
    }

    fn position(&self, node: usize, t: SimTime) -> Point {
        let (group, offset) = self.membership[node];
        let anchor = self.leaders.position(group, t);
        let (phase, freq) = self.phases[node];
        let wobble = t.as_secs_f64() * freq + phase;
        let p = Point::new(
            anchor.x + offset.x + self.jitter * wobble.sin(),
            anchor.y + offset.y + self.jitter * wobble.cos(),
        );
        self.field.clamp(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn make(n: usize, seed: u64) -> RandomWaypoint {
        let field = Field::new(1000.0, 500.0);
        let mut rng = SimRng::seed_from_u64(seed);
        RandomWaypoint::new(field, n, 1.0, 20.0, 5.0, SimTime::from_secs(1000), &mut rng)
    }

    #[test]
    fn static_uniform_is_time_invariant() {
        let field = Field::paper_default();
        let mut rng = SimRng::seed_from_u64(4);
        let m = StaticUniform::new(field, 50, &mut rng);
        assert_eq!(m.len(), 50);
        for i in 0..50 {
            assert_eq!(
                m.position(i, SimTime::ZERO),
                m.position(i, SimTime::from_secs(3600))
            );
        }
    }

    #[test]
    fn waypoint_positions_stay_in_field() {
        let rwp = make(20, 9);
        for node in 0..20 {
            for s in (0..1000).step_by(37) {
                let p = rwp.position(node, SimTime::from_secs(s));
                assert!(
                    rwp.field().contains(p),
                    "node {node} at {s}s left field: {p:?}"
                );
            }
        }
    }

    #[test]
    fn waypoint_is_deterministic() {
        let a = make(10, 42);
        let b = make(10, 42);
        for node in 0..10 {
            for s in [0, 100, 555, 999] {
                assert_eq!(
                    a.position(node, SimTime::from_secs(s)),
                    b.position(node, SimTime::from_secs(s))
                );
            }
        }
    }

    #[test]
    fn waypoint_nodes_actually_move() {
        let rwp = make(10, 7);
        let moved = (0..10)
            .filter(|&i| {
                rwp.position(i, SimTime::ZERO)
                    .distance(rwp.position(i, SimTime::from_secs(500)))
                    > 1.0
            })
            .count();
        assert!(moved >= 8, "only {moved}/10 nodes moved");
    }

    #[test]
    fn waypoint_speed_is_bounded() {
        let rwp = make(5, 13);
        // Max speed 20 m/s: over any 1 s step displacement must be <= 20 m
        // (plus float slack).
        for node in 0..5 {
            for s in 0..400u64 {
                let a = rwp.position(node, SimTime::from_secs(s));
                let b = rwp.position(node, SimTime::from_secs(s + 1));
                assert!(a.distance(b) <= 20.0 + 1e-6);
            }
        }
    }

    #[test]
    fn position_freezes_past_horizon() {
        let rwp = make(3, 21);
        let late = rwp.position(0, SimTime::from_secs(5000));
        let later = rwp.position(0, SimTime::from_secs(9000));
        assert_eq!(late, later);
    }

    #[test]
    fn snapshot_matches_individual_queries() {
        let rwp = make(8, 3);
        let t = SimTime::from_secs(123);
        let snap = rwp.snapshot(t);
        for (i, &p) in snap.iter().enumerate() {
            assert_eq!(p, rwp.position(i, t));
        }
    }

    fn make_group(seed: u64) -> ReferencePointGroup {
        let field = Field::new(2000.0, 2000.0);
        let mut rng = SimRng::seed_from_u64(seed);
        ReferencePointGroup::new(
            field,
            4,
            8,
            1.0,
            5.0,
            10.0,
            60.0,
            3.0,
            SimTime::from_secs(600),
            &mut rng,
        )
    }

    #[test]
    fn waypoint_max_speed_is_attained_inclusively() {
        // With v_min == v_max the special case keeps every leg at exactly
        // v_max; the sampled path must agree with the closed-interval
        // contract rather than panic on an empty half-open range.
        let field = Field::new(300.0, 300.0);
        let mut rng = SimRng::seed_from_u64(9);
        let rwp = RandomWaypoint::new(field, 3, 4.0, 4.0, 0.5, SimTime::from_secs(100), &mut rng);
        assert_eq!(rwp.len(), 3);
        for node in 0..3 {
            assert!(field.contains(rwp.position(node, SimTime::from_secs(50))));
        }
    }

    #[test]
    fn group_members_stay_near_each_other() {
        let g = make_group(1);
        assert_eq!(g.len(), 32);
        assert_eq!(g.groups(), 4);
        for t in [0u64, 100, 300, 599] {
            let t = SimTime::from_secs(t);
            for node in 0..g.len() {
                let leader_group = g.group_of(node);
                // All members of one group lie within spread + jitter +
                // clamping slack of each other pairwise (2*(60+3) = 126).
                for other in 0..g.len() {
                    if g.group_of(other) == leader_group {
                        let d = g.position(node, t).distance(g.position(other, t));
                        assert!(d <= 130.0, "group-mates {node},{other} are {d} m apart");
                    }
                }
            }
        }
    }

    #[test]
    fn groups_move_and_stay_in_field() {
        let g = make_group(2);
        let field = Field::new(2000.0, 2000.0);
        let mut moved = 0;
        for node in 0..g.len() {
            let a = g.position(node, SimTime::ZERO);
            let b = g.position(node, SimTime::from_secs(400));
            assert!(field.contains(a) && field.contains(b));
            if a.distance(b) > 5.0 {
                moved += 1;
            }
        }
        assert!(moved > g.len() / 2, "only {moved} nodes moved");
    }

    #[test]
    fn group_assignment_is_block_structured() {
        let g = make_group(3);
        for node in 0..g.len() {
            assert_eq!(g.group_of(node), node / 8);
        }
    }

    #[test]
    fn waypoint_speeds_cover_the_closed_interval() {
        // Documented contract: speeds are uniform on the *closed*
        // [v_min, v_max]. Reconstruct each leg's speed from the stored
        // trajectory and pin both bounds (times are nanosecond-quantized,
        // hence the relative slack).
        let field = Field::new(1000.0, 1000.0);
        let mut rng = SimRng::seed_from_u64(2011);
        let (v_min, v_max) = (2.0, 10.0);
        let rwp = RandomWaypoint::new(
            field,
            200,
            v_min,
            v_max,
            1.0,
            SimTime::from_secs(500),
            &mut rng,
        );
        let mut top = f64::MIN;
        let mut legs_seen = 0usize;
        for node_legs in &rwp.legs {
            for leg in node_legs {
                let travel = (leg.arrive - leg.depart).as_secs_f64();
                if travel <= 1e-9 {
                    continue; // degenerate hop: waypoint on top of the node
                }
                let speed = leg.from.distance(leg.to) / travel;
                assert!(
                    speed >= v_min * (1.0 - 1e-6) && speed <= v_max * (1.0 + 1e-6),
                    "leg speed {speed} outside [{v_min}, {v_max}]"
                );
                top = top.max(speed);
                legs_seen += 1;
            }
        }
        assert!(legs_seen > 1000, "expected many legs, saw {legs_seen}");
        // Inclusive sampling reaches into the top of the interval; the old
        // half-open draw left the closed upper end systematically starved.
        assert!(
            top > v_min + 0.99 * (v_max - v_min),
            "max observed speed {top} never approached v_max {v_max}"
        );
    }

    #[test]
    fn waypoint_equal_speed_bounds_move_at_exactly_that_speed() {
        let field = Field::new(500.0, 500.0);
        let mut rng = SimRng::seed_from_u64(5);
        let rwp = RandomWaypoint::new(field, 20, 7.5, 7.5, 0.0, SimTime::from_secs(300), &mut rng);
        for node_legs in &rwp.legs {
            for leg in node_legs {
                let travel = (leg.arrive - leg.depart).as_secs_f64();
                if travel <= 1e-9 {
                    continue;
                }
                let speed = leg.from.distance(leg.to) / travel;
                assert!((speed - 7.5).abs() < 7.5 * 1e-6, "speed {speed} != 7.5");
            }
        }
    }

    #[test]
    fn rpgm_is_deterministic() {
        let a = make_group(4);
        let b = make_group(4);
        for node in [0usize, 7, 31] {
            for t in [0u64, 250, 500] {
                assert_eq!(
                    a.position(node, SimTime::from_secs(t)),
                    b.position(node, SimTime::from_secs(t))
                );
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    /// Query instants covering leg interiors, pauses, and times well past
    /// the precomputed horizon (the models freeze there rather than
    /// extrapolate out of the field).
    fn query_times(horizon_secs: u64) -> Vec<SimTime> {
        let mut times = Vec::new();
        let mut ms = 0u64;
        while ms <= horizon_secs * 2_000 {
            times.push(SimTime::from_nanos(ms * 1_000_000));
            ms += 3_700; // deliberately incommensurate with whole seconds
        }
        times.push(SimTime::from_secs(horizon_secs * 10));
        times
    }

    /// Shared invariant check: positions stay in `field` at every query
    /// time (including past the horizon), and displacement between any two
    /// consecutive queries is bounded by `v_bound · Δt`.
    fn check_invariants(
        model: &impl Mobility,
        field: Field,
        v_bound: f64,
        horizon_secs: u64,
    ) -> Result<(), TestCaseError> {
        let times = query_times(horizon_secs);
        for node in 0..model.len() {
            let mut prev: Option<(SimTime, Point)> = None;
            for &t in &times {
                let p = model.position(node, t);
                prop_assert!(
                    field.contains(p),
                    "node {} at {} left the field: {:?}",
                    node,
                    t,
                    p
                );
                if let Some((t0, p0)) = prev {
                    let dt = (t - t0).as_secs_f64();
                    let moved = p0.distance(p);
                    prop_assert!(
                        moved <= v_bound * dt + 1e-6,
                        "node {} moved {} m in {} s (bound {} m/s)",
                        node,
                        moved,
                        dt,
                        v_bound
                    );
                }
                prev = Some((t, p));
            }
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn static_uniform_invariants(seed in 0u64..10_000, n in 1usize..40) {
            let field = Field::new(900.0, 700.0);
            let mut rng = SimRng::seed_from_u64(seed);
            let m = StaticUniform::new(field, n, &mut rng);
            // Static nodes: in-field forever with zero velocity.
            check_invariants(&m, field, 0.0, 60)?;
        }

        #[test]
        fn random_waypoint_invariants(
            seed in 0u64..10_000,
            n in 1usize..6,
            v_span in 0.0f64..20.0,
            pause in 0.0f64..8.0,
        ) {
            let field = Field::new(800.0, 600.0);
            let (v_min, v_max) = (1.0, 1.0 + v_span);
            let mut rng = SimRng::seed_from_u64(seed);
            let m = RandomWaypoint::new(
                field, n, v_min, v_max, pause, SimTime::from_secs(60), &mut rng,
            );
            check_invariants(&m, field, v_max, 60)?;
        }

        #[test]
        fn reference_point_group_invariants(
            seed in 0u64..10_000,
            groups in 1usize..4,
            group_size in 1usize..5,
            v_max in 1.0f64..10.0,
            jitter in 0.0f64..5.0,
        ) {
            let field = Field::new(1200.0, 1200.0);
            let mut rng = SimRng::seed_from_u64(seed);
            let m = ReferencePointGroup::new(
                field, groups, group_size, 1.0, v_max, 2.0, 40.0, jitter,
                SimTime::from_secs(60), &mut rng,
            );
            // Members ride their leader (≤ v_max) plus a sinusoidal wobble
            // whose per-axis rate is at most jitter · freq (freq < 0.3),
            // √2 across both axes; field clamping only ever shrinks steps.
            let v_bound = v_max + jitter * 0.3 * std::f64::consts::SQRT_2;
            check_invariants(&m, field, v_bound, 60)?;
        }
    }
}
