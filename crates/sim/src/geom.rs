//! Planar geometry for node placement: points, distances, and the
//! rectangular deployment field.
//!
//! The paper deploys 2000 nodes uniformly in a 5000 × 5000 m² field with a
//! 300 m transmission range; [`Field`] models that region and provides
//! uniform sampling, and [`lens_overlap_factor`] computes the
//! `1 − 3√3/(4π)` constant of Theorem 3.

use crate::rng::SimRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A point in the deployment plane, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Easting coordinate in metres.
    pub x: f64,
    /// Northing coordinate in metres.
    pub y: f64,
}

impl Point {
    /// Creates a point from coordinates in metres.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    ///
    /// # Examples
    ///
    /// ```
    /// use jrsnd_sim::geom::Point;
    /// let a = Point::new(0.0, 0.0);
    /// let b = Point::new(3.0, 4.0);
    /// assert_eq!(a.distance(b), 5.0);
    /// ```
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance — avoids the square root in hot loops.
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// The midpoint between two points.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }
}

/// The rectangular deployment field, `[0, width] × [0, height]` metres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Field {
    width: f64,
    height: f64,
}

impl Field {
    /// Creates a field of the given dimensions in metres.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is non-positive or non-finite.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width.is_finite() && height.is_finite() && width > 0.0 && height > 0.0,
            "field dimensions must be positive and finite, got {width} x {height}"
        );
        Field { width, height }
    }

    /// The paper's default 5000 × 5000 m² field.
    pub fn paper_default() -> Self {
        Field::new(5000.0, 5000.0)
    }

    /// Field width in metres.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Field height in metres.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Field area in square metres.
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Whether `p` lies inside the field (inclusive of edges).
    pub fn contains(&self, p: Point) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }

    /// Clamps `p` onto the field.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(p.x.clamp(0.0, self.width), p.y.clamp(0.0, self.height))
    }

    /// Samples a point uniformly at random inside the field.
    pub fn sample_uniform(&self, rng: &mut SimRng) -> Point {
        Point::new(
            rng.gen_range(0.0..self.width),
            rng.gen_range(0.0..self.height),
        )
    }

    /// Samples `n` i.i.d. uniform points — the paper's node placement.
    pub fn sample_uniform_n(&self, n: usize, rng: &mut SimRng) -> Vec<Point> {
        (0..n).map(|_| self.sample_uniform(rng)).collect()
    }

    /// Expected number of physical neighbors of a node with transmission
    /// radius `range`, ignoring border effects: `n · π·range² / area`.
    ///
    /// This is the `g` used when instantiating Theorem 3 analytically.
    pub fn expected_degree(&self, n: usize, range: f64) -> f64 {
        (n as f64) * std::f64::consts::PI * range * range / self.area()
    }
}

/// The `1 − 3√3/(4π)` lens-overlap factor of Theorem 3.
///
/// For two nodes exactly at each other's transmission boundary, the expected
/// overlap of their coverage disks is `(π − 3√3/4)·a²`; dividing by the disk
/// area `π·a²` gives this factor ≈ 0.5865.
///
/// # Examples
///
/// ```
/// let f = jrsnd_sim::geom::lens_overlap_factor();
/// assert!((f - 0.5865).abs() < 1e-3);
/// ```
pub fn lens_overlap_factor() -> f64 {
    1.0 - 3.0 * 3.0_f64.sqrt() / (4.0 * std::f64::consts::PI)
}

/// Area of intersection of two disks of equal radius `r` whose centres are
/// `d` apart (the classical lens formula). Used for exact expected common
/// neighbour counts and to validate [`lens_overlap_factor`].
pub fn disk_intersection_area(r: f64, d: f64) -> f64 {
    assert!(
        r > 0.0 && d >= 0.0,
        "radius must be positive, distance non-negative"
    );
    if d >= 2.0 * r {
        return 0.0;
    }
    if d == 0.0 {
        return std::f64::consts::PI * r * r;
    }
    let half = d / (2.0 * r);
    2.0 * r * r * half.acos() - (d / 2.0) * (4.0 * r * r - d * d).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn distance_basics() {
        let a = Point::new(1.0, 1.0);
        assert_eq!(a.distance(a), 0.0);
        let b = Point::new(4.0, 5.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(a.midpoint(b), Point::new(2.5, 3.0));
    }

    #[test]
    fn field_contains_and_clamps() {
        let f = Field::new(10.0, 20.0);
        assert!(f.contains(Point::new(0.0, 0.0)));
        assert!(f.contains(Point::new(10.0, 20.0)));
        assert!(!f.contains(Point::new(10.1, 5.0)));
        assert_eq!(f.clamp(Point::new(-3.0, 25.0)), Point::new(0.0, 20.0));
        assert_eq!(f.area(), 200.0);
    }

    #[test]
    fn uniform_samples_stay_inside() {
        let f = Field::paper_default();
        let mut rng = SimRng::seed_from_u64(1);
        for p in f.sample_uniform_n(1000, &mut rng) {
            assert!(f.contains(p));
        }
    }

    #[test]
    fn uniform_samples_cover_quadrants() {
        let f = Field::new(100.0, 100.0);
        let mut rng = SimRng::seed_from_u64(2);
        let pts = f.sample_uniform_n(4000, &mut rng);
        let mut quadrants = [0u32; 4];
        for p in pts {
            let q = (usize::from(p.x > 50.0)) | (usize::from(p.y > 50.0) << 1);
            quadrants[q] += 1;
        }
        for &q in &quadrants {
            assert!((800..1200).contains(&q), "quadrant count {q}");
        }
    }

    #[test]
    fn expected_degree_matches_paper_setup() {
        // 2000 nodes, 5000x5000 field, 300 m range => g ~= 22.6.
        let g = Field::paper_default().expected_degree(2000, 300.0);
        assert!((g - 22.62).abs() < 0.05, "g = {g}");
    }

    #[test]
    fn lens_factor_value() {
        let f = lens_overlap_factor();
        assert!((f - 0.586_503).abs() < 1e-5, "factor = {f}");
    }

    #[test]
    fn disk_intersection_limits() {
        let r = 300.0;
        assert_eq!(disk_intersection_area(r, 2.0 * r), 0.0);
        assert!((disk_intersection_area(r, 0.0) - std::f64::consts::PI * r * r).abs() < 1e-6);
    }

    #[test]
    fn expected_overlap_matches_theorem3_constant() {
        // Theorem 3 uses the *expected* overlap of two range-a disks whose
        // centres are a uniformly random neighbour distance apart
        // (density 2d/a^2 on [0, a]): E[A] = (pi - 3*sqrt(3)/4) a^2, i.e.
        // E[A] / (pi a^2) = lens_overlap_factor(). Verify by quadrature.
        let a = 300.0;
        let steps = 200_000;
        let mut acc = 0.0;
        for i in 0..steps {
            let d = (i as f64 + 0.5) / steps as f64 * a;
            acc += disk_intersection_area(a, d) * (2.0 * d / (a * a)) * (a / steps as f64);
        }
        let expected = (std::f64::consts::PI - 3.0 * 3.0_f64.sqrt() / 4.0) * a * a;
        assert!(
            (acc - expected).abs() / expected < 1e-6,
            "E[A]={acc}, want {expected}"
        );
        let frac = acc / (std::f64::consts::PI * a * a);
        assert!((frac - lens_overlap_factor()).abs() < 1e-6);
    }

    #[test]
    fn disk_intersection_monotone_in_distance() {
        let r = 10.0;
        let mut last = f64::INFINITY;
        for i in 0..=40 {
            let d = i as f64 * 0.5;
            let a = disk_intersection_area(r, d);
            assert!(a <= last + 1e-9, "not monotone at d={d}");
            last = a;
        }
    }

    #[test]
    #[should_panic(expected = "field dimensions must be positive")]
    fn zero_field_rejected() {
        let _ = Field::new(0.0, 5.0);
    }
}
