//! Deterministic fault injection for chaos experiments.
//!
//! A [`FaultPlan`] declares *what* can go wrong — transmission drops,
//! chip-burst corruption, frame truncation, delivery delay, per-node clock
//! skew — and with what probability. A [`FaultInjector`] binds a plan to a
//! `u64` seed and answers every "does this fault fire here?" question as a
//! **pure function of `(seed, stream, index)`**: no interior state, no
//! ordering dependence. That purity is what lets fault injection compose
//! with the Monte-Carlo driver's static seed sharding — the same seed and
//! plan produce byte-identical aggregates for any worker count, exactly
//! like the block-keyed channel noise in `jrsnd_dsss::channel`.
//!
//! Streams partition the decision space: callers pick a stable `stream`
//! label per injection site (e.g. the handshake-message index or a pair
//! id) and a monotonically meaningful `index` within it (e.g. the
//! transmission counter). Two sites with different streams never share
//! fault decisions, so adding an injection point cannot perturb another.
//!
//! Every fired fault increments a `fault.injected.*` counter in the global
//! metrics registry. Counter updates are commutative, so observability
//! does not affect output determinism.

use crate::metric_counter;

/// Same 64-bit golden-ratio constant the channel noise kernel uses.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: a high-quality 64→64 bit mixer.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a mixed word to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Declarative description of which faults can fire and how hard.
///
/// All probabilities are per *transmission* (or per *session* for the
/// protocol-level overlay) and must lie in `[0, 1]`. A plan with every
/// probability and the skew at zero is inert: the injector becomes a
/// no-op and the run is bit-identical to one without fault injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability that a transmission is dropped entirely.
    pub drop_prob: f64,
    /// Probability that a transmission is delayed.
    pub delay_prob: f64,
    /// Maximum delivery delay, in chips (uniform in `1..=max`).
    pub max_delay_chips: u64,
    /// Probability that a contiguous chip burst is inverted.
    pub burst_prob: f64,
    /// Maximum burst length, in chips (uniform in `1..=max`).
    pub max_burst_chips: usize,
    /// Probability that a frame loses its tail.
    pub truncate_prob: f64,
    /// Maximum fraction of the frame that truncation removes.
    pub max_truncate_frac: f64,
    /// Per-node clock-skew amplitude in seconds (skew is uniform in
    /// `[-clock_skew_s, +clock_skew_s]`).
    pub clock_skew_s: f64,
}

impl FaultPlan {
    /// The inert plan: nothing ever fires.
    pub fn none() -> Self {
        FaultPlan {
            drop_prob: 0.0,
            delay_prob: 0.0,
            max_delay_chips: 0,
            burst_prob: 0.0,
            max_burst_chips: 0,
            truncate_prob: 0.0,
            max_truncate_frac: 0.0,
            clock_skew_s: 0.0,
        }
    }

    /// The canonical one-knob plan used by the `chaos` experiment: every
    /// fault class scales linearly with `x` (clamped to `[0, 1]`).
    pub fn intensity(x: f64) -> Self {
        let x = x.clamp(0.0, 1.0);
        FaultPlan {
            drop_prob: 0.15 * x,
            delay_prob: 0.25 * x,
            max_delay_chips: 96,
            burst_prob: 0.35 * x,
            max_burst_chips: 48,
            truncate_prob: 0.20 * x,
            max_truncate_frac: 0.25,
            clock_skew_s: 1e-4 * x,
        }
    }

    /// Whether no fault can ever fire under this plan.
    pub fn is_inert(&self) -> bool {
        self.drop_prob == 0.0
            && self.delay_prob == 0.0
            && self.burst_prob == 0.0
            && self.truncate_prob == 0.0
            && self.clock_skew_s == 0.0
    }

    /// Asserts every probability lies in `[0, 1]` and the fraction in
    /// `[0, 1]`. Called by [`FaultInjector::new`].
    fn validate(&self) {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("delay_prob", self.delay_prob),
            ("burst_prob", self.burst_prob),
            ("truncate_prob", self.truncate_prob),
            ("max_truncate_frac", self.max_truncate_frac),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0, 1]");
        }
        assert!(self.clock_skew_s >= 0.0, "clock_skew_s must be >= 0");
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// A seeded, stateless fault oracle.
///
/// Every query is a pure function of `(seed, stream, index)` plus a
/// per-fault-class salt, so the same injector answers identically no
/// matter how calls interleave across threads or retries.
#[derive(Debug, Clone, Copy)]
pub struct FaultInjector {
    seed: u64,
    plan: FaultPlan,
}

// Per-fault-class salts keep the drop/delay/burst/truncate decisions at
// one (stream, index) independent of each other.
const SALT_DROP: u64 = 0xD809;
const SALT_DELAY: u64 = 0xDE1A;
const SALT_BURST: u64 = 0xB5B5;
const SALT_TRUNC: u64 = 0x7277;
const SALT_SKEW: u64 = 0x5CE3;
const SALT_SESSION: u64 = 0x5E55;

impl FaultInjector {
    /// Binds `plan` to `seed`.
    ///
    /// # Panics
    ///
    /// Panics if a plan probability lies outside `[0, 1]` or the skew
    /// amplitude is negative.
    pub fn new(seed: u64, plan: FaultPlan) -> Self {
        plan.validate();
        FaultInjector { seed, plan }
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The seed this injector is keyed on.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    #[inline]
    fn word(&self, stream: u64, index: u64, salt: u64) -> u64 {
        mix(self
            .seed
            .wrapping_add(GOLDEN)
            .wrapping_add(stream.wrapping_mul(GOLDEN))
            ^ index.rotate_left(17)
            ^ salt.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    #[inline]
    fn fires(&self, stream: u64, index: u64, salt: u64, prob: f64) -> bool {
        prob > 0.0 && unit(self.word(stream, index, salt)) < prob
    }

    /// Whether transmission `index` on `stream` is dropped.
    pub fn drops(&self, stream: u64, index: u64) -> bool {
        let hit = self.fires(stream, index, SALT_DROP, self.plan.drop_prob);
        if hit {
            metric_counter!("fault.injected.drops").inc();
        }
        hit
    }

    /// Delivery delay, in chips, for transmission `index` on `stream`
    /// (zero when the delay fault does not fire).
    pub fn delay_chips(&self, stream: u64, index: u64) -> u64 {
        if self.plan.max_delay_chips == 0
            || !self.fires(stream, index, SALT_DELAY, self.plan.delay_prob)
        {
            return 0;
        }
        metric_counter!("fault.injected.delays").inc();
        let word = self.word(stream, index, SALT_DELAY ^ GOLDEN);
        1 + word % self.plan.max_delay_chips
    }

    /// Chip burst to invert within a transmission of `len` chips:
    /// `Some((start, burst_len))`, or `None` when the fault does not fire.
    pub fn burst(&self, stream: u64, index: u64, len: usize) -> Option<(usize, usize)> {
        if len == 0
            || self.plan.max_burst_chips == 0
            || !self.fires(stream, index, SALT_BURST, self.plan.burst_prob)
        {
            return None;
        }
        metric_counter!("fault.injected.bursts").inc();
        let word = self.word(stream, index, SALT_BURST ^ GOLDEN);
        let burst_len = 1 + (word as usize) % self.plan.max_burst_chips.min(len);
        let start = (mix(word) as usize) % (len - burst_len + 1);
        Some((start, burst_len))
    }

    /// Post-truncation length for a transmission of `len` chips: `len`
    /// itself when the fault does not fire, otherwise a shorter nonzero
    /// length with at most `max_truncate_frac · len` chips removed.
    pub fn truncated_len(&self, stream: u64, index: u64, len: usize) -> usize {
        if len <= 1 || !self.fires(stream, index, SALT_TRUNC, self.plan.truncate_prob) {
            return len;
        }
        let max_cut = ((len as f64) * self.plan.max_truncate_frac) as usize;
        let max_cut = max_cut.min(len - 1);
        if max_cut == 0 {
            return len;
        }
        metric_counter!("fault.injected.truncations").inc();
        let word = self.word(stream, index, SALT_TRUNC ^ GOLDEN);
        len - (1 + (word as usize) % max_cut)
    }

    /// Clock skew for `node`, in seconds, uniform in
    /// `[-clock_skew_s, +clock_skew_s]`. Stable per node for the whole
    /// run.
    pub fn clock_skew_s(&self, node: u64) -> f64 {
        if self.plan.clock_skew_s == 0.0 {
            return 0.0;
        }
        let u = unit(self.word(node, 0, SALT_SKEW));
        (2.0 * u - 1.0) * self.plan.clock_skew_s
    }

    /// Protocol-level overlay for drivers that do not model individual
    /// chips: whether session attempt `index` on `stream` is knocked out
    /// by the combined transmission-fault probability. The combined
    /// probability treats drop/burst/truncate as independent per-message
    /// failure sources.
    pub fn session_disrupted(&self, stream: u64, index: u64) -> bool {
        let p_ok = (1.0 - self.plan.drop_prob)
            * (1.0 - self.plan.burst_prob)
            * (1.0 - self.plan.truncate_prob);
        let hit = self.fires(stream, index, SALT_SESSION, 1.0 - p_ok);
        if hit {
            metric_counter!("fault.injected.sessions").inc();
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::intensity(0.8)
    }

    #[test]
    fn decisions_are_pure_functions_of_seed_stream_index() {
        let a = FaultInjector::new(77, plan());
        let b = FaultInjector::new(77, plan());
        for stream in 0..4u64 {
            for index in 0..256u64 {
                assert_eq!(a.drops(stream, index), b.drops(stream, index));
                assert_eq!(a.delay_chips(stream, index), b.delay_chips(stream, index));
                assert_eq!(a.burst(stream, index, 512), b.burst(stream, index, 512));
                assert_eq!(
                    a.truncated_len(stream, index, 512),
                    b.truncated_len(stream, index, 512)
                );
                assert_eq!(
                    a.session_disrupted(stream, index),
                    b.session_disrupted(stream, index)
                );
            }
        }
    }

    #[test]
    fn query_order_does_not_matter() {
        let inj = FaultInjector::new(9, plan());
        let forward: Vec<bool> = (0..64).map(|i| inj.drops(3, i)).collect();
        let backward: Vec<bool> = (0..64).rev().map(|i| inj.drops(3, i)).collect();
        let reversed: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, reversed);
    }

    #[test]
    fn different_seeds_and_streams_decorrelate() {
        let a = FaultInjector::new(1, plan());
        let b = FaultInjector::new(2, plan());
        let same_seed: Vec<bool> = (0..512).map(|i| a.drops(0, i)).collect();
        let other_seed: Vec<bool> = (0..512).map(|i| b.drops(0, i)).collect();
        let other_stream: Vec<bool> = (0..512).map(|i| a.drops(1, i)).collect();
        assert_ne!(same_seed, other_seed);
        assert_ne!(same_seed, other_stream);
    }

    #[test]
    fn inert_plan_never_fires() {
        let inj = FaultInjector::new(123, FaultPlan::none());
        assert!(FaultPlan::none().is_inert());
        for i in 0..512 {
            assert!(!inj.drops(0, i));
            assert_eq!(inj.delay_chips(0, i), 0);
            assert_eq!(inj.burst(0, i, 256), None);
            assert_eq!(inj.truncated_len(0, i, 256), 256);
            assert!(!inj.session_disrupted(0, i));
        }
        assert_eq!(inj.clock_skew_s(7), 0.0);
    }

    #[test]
    fn rates_roughly_match_the_plan() {
        let inj = FaultInjector::new(2011, plan());
        let n = 20_000u64;
        let drops = (0..n).filter(|&i| inj.drops(0, i)).count() as f64 / n as f64;
        let expected = plan().drop_prob;
        assert!(
            (drops - expected).abs() < 0.01,
            "drop rate {drops} vs plan {expected}"
        );
    }

    #[test]
    fn burst_and_truncation_stay_in_bounds() {
        let inj = FaultInjector::new(5, FaultPlan::intensity(1.0));
        for i in 0..4096 {
            for len in [1usize, 2, 63, 64, 65, 512] {
                if let Some((start, blen)) = inj.burst(0, i, len) {
                    assert!(blen >= 1 && start + blen <= len);
                }
                let t = inj.truncated_len(0, i, len);
                assert!(t >= 1 && t <= len);
                let cut = len - t;
                assert!(cut as f64 <= (len as f64) * 0.25 + 1.0);
            }
        }
    }

    #[test]
    fn clock_skew_is_stable_and_bounded() {
        let inj = FaultInjector::new(40, plan());
        for node in 0..64 {
            let s = inj.clock_skew_s(node);
            assert_eq!(s, inj.clock_skew_s(node));
            assert!(s.abs() <= plan().clock_skew_s);
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn invalid_plan_is_rejected() {
        let bad = FaultPlan {
            drop_prob: 1.5,
            ..FaultPlan::none()
        };
        let _ = FaultInjector::new(0, bad);
    }
}
