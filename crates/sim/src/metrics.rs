//! A lightweight observability layer: named counters, gauges, and
//! fixed-bucket histograms in a process-global registry, plus an opt-in
//! per-run trace ring buffer.
//!
//! Every figure of the paper is the average of many seeded runs; this
//! module makes those runs inspectable without perturbing them. Three
//! properties drive the design:
//!
//! * **Zero allocation on the hot path.** Metrics are registered once
//!   (one leaked allocation per name) and call sites cache the returned
//!   `&'static` handle in a [`std::sync::OnceLock`] via the
//!   [`metric_counter!`]/[`metric_gauge!`]/[`metric_histogram!`] macros,
//!   so a recording is one or two relaxed atomic operations.
//! * **Scheduling independence.** All recordings are commutative
//!   (saturating adds, maxima, bucket increments), so the totals are a
//!   pure function of *what* ran, not of how the OS interleaved the
//!   worker threads — the same contract [`crate::rng::SimRng`] gives the
//!   simulation results themselves.
//! * **No external dependencies.** The registry is `std`-only and
//!   [`MetricsSnapshot::to_json`] hand-rolls its JSON, so the vendored
//!   workspace builds offline.
//!
//! # Examples
//!
//! ```
//! use jrsnd_sim::metric_counter;
//! use jrsnd_sim::metrics;
//!
//! metric_counter!("doc.example_events").add(3);
//! let snap = metrics::snapshot();
//! assert_eq!(snap.counter("doc.example_events"), Some(3));
//! assert!(snap.to_json().contains("doc.example_events"));
//! ```

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotonically increasing event count. Saturates at `u64::MAX`
/// instead of wrapping, so a runaway counter can never masquerade as a
/// small one.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n`, saturating at `u64::MAX`.
    #[inline]
    pub fn add(&self, n: u64) {
        // `fetch_add` would wrap; a CAS loop keeps saturation exact. The
        // loop body is a single relaxed compare-exchange in the
        // non-contended common case.
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            });
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write or running-maximum `f64` value (stored as bits so updates
/// stay lock-free).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    const fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0), // 0.0f64
        }
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-water mark). NaN is
    /// ignored.
    #[inline]
    pub fn set_max(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let _ = self
            .bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                let cur = f64::from_bits(bits);
                if v > cur {
                    Some(v.to_bits())
                } else {
                    None
                }
            });
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// A fixed-range histogram over `[min, max)` with uniform atomic buckets
/// and under/overflow tracking — the same bucket semantics as
/// [`crate::stats::Histogram`], but concurrently recordable.
#[derive(Debug)]
pub struct HistogramMetric {
    min: f64,
    max: f64,
    buckets: Vec<AtomicU64>,
    underflow: AtomicU64,
    overflow: AtomicU64,
    total: AtomicU64,
}

impl HistogramMetric {
    fn new(min: f64, max: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!(
            min.is_finite() && max.is_finite() && min < max,
            "invalid histogram range [{min}, {max})"
        );
        HistogramMetric {
            min,
            max,
            buckets: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
            underflow: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    /// Records one observation. NaN is counted as overflow rather than
    /// panicking: instrumentation must never kill a run.
    #[inline]
    pub fn record(&self, x: f64) {
        self.total.fetch_add(1, Ordering::Relaxed);
        if x.is_nan() || x >= self.max {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        } else if x < self.min {
            self.underflow.fetch_add(1, Ordering::Relaxed);
        } else {
            let n = self.buckets.len();
            let idx = ((x - self.min) / (self.max - self.min) * n as f64) as usize;
            self.buckets[idx.min(n - 1)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// The `[lo, hi)` bounds of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_bounds(&self, i: usize) -> (f64, f64) {
        assert!(i < self.buckets.len(), "bucket {i} out of range");
        let w = (self.max - self.min) / self.buckets.len() as f64;
        (self.min + i as f64 * w, self.min + (i + 1) as f64 * w)
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow.load(Ordering::Relaxed)
    }

    /// Observations at or above the range end (or NaN).
    pub fn overflow(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.underflow.store(0, Ordering::Relaxed);
        self.overflow.store(0, Ordering::Relaxed);
        self.total.store(0, Ordering::Relaxed);
    }
}

/// The process-global registry. Registration takes a lock and leaks one
/// allocation per distinct name; recording never touches the lock.
struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static HistogramMetric>>,
}

static REGISTRY: Registry = Registry {
    counters: Mutex::new(BTreeMap::new()),
    gauges: Mutex::new(BTreeMap::new()),
    histograms: Mutex::new(BTreeMap::new()),
};

/// Returns the counter registered under `name`, creating it on first use.
/// Prefer [`metric_counter!`] at call sites — it caches the handle.
pub fn counter(name: &'static str) -> &'static Counter {
    REGISTRY
        .counters
        .lock()
        .expect("metrics registry poisoned")
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Counter::new())))
}

/// Returns the gauge registered under `name`, creating it on first use.
/// Prefer [`metric_gauge!`] at call sites.
pub fn gauge(name: &'static str) -> &'static Gauge {
    REGISTRY
        .gauges
        .lock()
        .expect("metrics registry poisoned")
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Gauge::new())))
}

/// Returns the histogram registered under `name`, creating it with the
/// given range on first use. A later registration under the same name
/// keeps the original range (first writer wins). Prefer
/// [`metric_histogram!`] at call sites.
pub fn histogram(
    name: &'static str,
    min: f64,
    max: f64,
    buckets: usize,
) -> &'static HistogramMetric {
    REGISTRY
        .histograms
        .lock()
        .expect("metrics registry poisoned")
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(HistogramMetric::new(min, max, buckets))))
}

/// Caches a [`counter`] handle at the call site: after the first call the
/// expansion is one atomic load plus the recording itself.
#[macro_export]
macro_rules! metric_counter {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::counter($name))
    }};
}

/// Caches a [`gauge`] handle at the call site.
#[macro_export]
macro_rules! metric_gauge {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::metrics::Gauge> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::gauge($name))
    }};
}

/// Caches a [`histogram`] handle at the call site.
#[macro_export]
macro_rules! metric_histogram {
    ($name:literal, $min:expr, $max:expr, $buckets:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::metrics::HistogramMetric> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::histogram($name, $min, $max, $buckets))
    }};
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name, dot-namespaced by layer (e.g. `dndp.discovered`).
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// One gauge in a [`MetricsSnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: f64,
}

/// One histogram in a [`MetricsSnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Lower bound of the bucketed range.
    pub min: f64,
    /// Upper bound (exclusive) of the bucketed range.
    pub max: f64,
    /// Per-bucket counts over `[min, max)`, uniform width.
    pub buckets: Vec<u64>,
    /// Observations below `min`.
    pub underflow: u64,
    /// Observations at or above `max`.
    pub overflow: u64,
    /// Total observations.
    pub total: u64,
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, ascending by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, ascending by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, ascending by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Counter names that start with `prefix` and have a nonzero value —
    /// the "did this layer record anything" check.
    pub fn nonzero_with_prefix(&self, prefix: &str) -> Vec<&str> {
        self.counters
            .iter()
            .filter(|c| c.value > 0 && c.name.starts_with(prefix))
            .map(|c| c.name.as_str())
            .collect()
    }

    /// Serializes the snapshot as pretty-printed JSON (hand-rolled: the
    /// workspace is vendored-only). Non-finite gauge values serialize as
    /// `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_string(&c.name), c.value));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {}",
                json_string(&g.name),
                json_f64(g.value)
            ));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "\n    {}: {{\"min\": {}, \"max\": {}, \"buckets\": [{}], \
                 \"underflow\": {}, \"overflow\": {}, \"total\": {}}}",
                json_string(&h.name),
                json_f64(h.min),
                json_f64(h.max),
                buckets.join(", "),
                h.underflow,
                h.overflow,
                h.total
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Copies every registered metric into a [`MetricsSnapshot`].
pub fn snapshot() -> MetricsSnapshot {
    let counters = REGISTRY
        .counters
        .lock()
        .expect("metrics registry poisoned")
        .iter()
        .map(|(&name, c)| CounterSnapshot {
            name: name.to_string(),
            value: c.get(),
        })
        .collect();
    let gauges = REGISTRY
        .gauges
        .lock()
        .expect("metrics registry poisoned")
        .iter()
        .map(|(&name, g)| GaugeSnapshot {
            name: name.to_string(),
            value: g.get(),
        })
        .collect();
    let histograms = REGISTRY
        .histograms
        .lock()
        .expect("metrics registry poisoned")
        .iter()
        .map(|(&name, h)| HistogramSnapshot {
            name: name.to_string(),
            min: h.min,
            max: h.max,
            buckets: h
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            underflow: h.underflow(),
            overflow: h.overflow(),
            total: h.count(),
        })
        .collect();
    MetricsSnapshot {
        counters,
        gauges,
        histograms,
    }
}

/// Zeroes every registered metric (names and histogram ranges are kept).
/// Intended for scoping: snapshot-and-reset between experiment phases.
pub fn reset() {
    for c in REGISTRY
        .counters
        .lock()
        .expect("metrics registry poisoned")
        .values()
    {
        c.reset();
    }
    for g in REGISTRY
        .gauges
        .lock()
        .expect("metrics registry poisoned")
        .values()
    {
        g.reset();
    }
    for h in REGISTRY
        .histograms
        .lock()
        .expect("metrics registry poisoned")
        .values()
    {
        h.reset();
    }
}

// ---------------------------------------------------------------------------
// Per-run trace ring buffer
// ---------------------------------------------------------------------------

/// One traced event: a virtual-time key, a static target (the layer that
/// emitted it), and a rendered message.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual time of the event in seconds (0.0 for snapshot-mode layers
    /// that have no clock).
    pub t: f64,
    /// The emitting layer, e.g. `"timeline"` or `"dndp"`.
    pub target: &'static str,
    /// The rendered message.
    pub message: String,
}

struct TraceRing {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

thread_local! {
    static TRACE: RefCell<Option<TraceRing>> = const { RefCell::new(None) };
}

/// Cheap global check so disabled tracing costs one relaxed load. Tracing
/// itself is per-thread; this flag is set while *any* thread traces.
static TRACE_ARMED: AtomicBool = AtomicBool::new(false);

/// Enables tracing on the current thread with a bounded ring of
/// `capacity` events (oldest dropped first). Tracing is off by default
/// and never enabled transitively on worker threads.
pub fn trace_enable(capacity: usize) {
    assert!(capacity > 0, "trace ring needs capacity");
    TRACE_ARMED.store(true, Ordering::Relaxed);
    TRACE.with(|t| {
        *t.borrow_mut() = Some(TraceRing {
            capacity,
            events: VecDeque::with_capacity(capacity),
            dropped: 0,
        });
    });
}

/// Disables tracing on the current thread and discards its buffer.
pub fn trace_disable() {
    TRACE.with(|t| *t.borrow_mut() = None);
}

/// Whether tracing *might* be enabled (fast pre-check used by
/// [`sim_trace!`] so the format arguments are never rendered when
/// tracing is off anywhere in the process).
#[inline]
pub fn trace_armed() -> bool {
    TRACE_ARMED.load(Ordering::Relaxed)
}

/// Appends an event to the current thread's ring, if tracing is enabled
/// here. Prefer [`sim_trace!`], which skips message rendering when off.
pub fn trace_event(t: f64, target: &'static str, message: String) {
    TRACE.with(|ring| {
        if let Some(ring) = ring.borrow_mut().as_mut() {
            if ring.events.len() == ring.capacity {
                ring.events.pop_front();
                ring.dropped += 1;
            }
            ring.events.push_back(TraceEvent { t, target, message });
        }
    });
}

/// Takes every buffered event from the current thread's ring (the ring
/// stays enabled). Returns `(events, dropped_count)`.
pub fn trace_drain() -> (Vec<TraceEvent>, u64) {
    TRACE.with(|ring| {
        let mut borrow = ring.borrow_mut();
        match borrow.as_mut() {
            Some(ring) => {
                let dropped = ring.dropped;
                ring.dropped = 0;
                (ring.events.drain(..).collect(), dropped)
            }
            None => (Vec::new(), 0),
        }
    })
}

/// `trace!`-style macro: records `(virtual_time, target, format…)` into
/// the per-thread ring buffer. Compiles to a single relaxed load when no
/// thread has tracing enabled — cheap enough for protocol hot paths.
#[macro_export]
macro_rules! sim_trace {
    ($t:expr, $target:literal, $($arg:tt)*) => {
        if $crate::metrics::trace_armed() {
            $crate::metrics::trace_event(($t) as f64, $target, format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_saturates() {
        let c = counter("test.counter_saturation");
        c.add(u64::MAX - 1);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
        c.add(100); // must saturate, not wrap
        assert_eq!(c.get(), u64::MAX);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_is_shared_by_name() {
        counter("test.shared").add(2);
        counter("test.shared").add(3);
        assert_eq!(counter("test.shared").get(), 5);
    }

    #[test]
    fn gauge_set_and_max() {
        let g = gauge("test.gauge");
        g.set(1.5);
        assert_eq!(g.get(), 1.5);
        g.set_max(0.5); // lower: ignored
        assert_eq!(g.get(), 1.5);
        g.set_max(9.25);
        assert_eq!(g.get(), 9.25);
        g.set_max(f64::NAN); // NaN: ignored
        assert_eq!(g.get(), 9.25);
    }

    #[test]
    fn histogram_bucket_edges() {
        let h = histogram("test.hist_edges", 0.0, 10.0, 5);
        assert_eq!(h.bucket_bounds(0), (0.0, 2.0));
        assert_eq!(h.bucket_bounds(4), (8.0, 10.0));
        h.record(0.0); // inclusive lower edge -> bucket 0
        h.record(2.0); // bucket boundary -> bucket 1
        h.record(9.999); // last bucket
        h.record(10.0); // exclusive upper edge -> overflow
        h.record(-0.001); // underflow
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(4), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn histogram_nan_is_overflow_not_panic() {
        let h = histogram("test.hist_nan", 0.0, 1.0, 2);
        h.record(f64::NAN);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn histogram_first_registration_wins() {
        let a = histogram("test.hist_range", 0.0, 1.0, 4);
        let b = histogram("test.hist_range", 0.0, 100.0, 7);
        assert!(std::ptr::eq(a, b));
        assert_eq!(b.buckets.len(), 4);
    }

    #[test]
    fn snapshot_reports_and_serializes() {
        counter("test.snap_counter").add(7);
        gauge("test.snap_gauge").set(2.5);
        histogram("test.snap_hist", 0.0, 4.0, 2).record(1.0);
        let snap = snapshot();
        assert_eq!(snap.counter("test.snap_counter"), Some(7));
        assert_eq!(snap.gauge("test.snap_gauge"), Some(2.5));
        let h = snap.histogram("test.snap_hist").expect("registered");
        assert_eq!(h.buckets.iter().sum::<u64>(), 1);
        let json = snap.to_json();
        assert!(json.contains("\"test.snap_counter\": 7"));
        assert!(json.contains("\"test.snap_gauge\": 2.5"));
        assert!(json.contains("\"test.snap_hist\""));
        // Names are sorted, so the output is reproducible.
        let again = snapshot().to_json();
        assert_eq!(json, again);
    }

    #[test]
    fn nonzero_prefix_filter() {
        counter("prefix_a.x").add(1);
        counter("prefix_a.y"); // registered but zero
        counter("prefix_b.z").add(1);
        let snap = snapshot();
        let hits = snap.nonzero_with_prefix("prefix_a.");
        assert_eq!(hits, vec!["prefix_a.x"]);
    }

    #[test]
    fn macros_cache_handles() {
        let a = metric_counter!("test.macro_counter");
        let b = metric_counter!("test.macro_counter");
        assert!(std::ptr::eq(a, b));
        a.inc();
        assert_eq!(counter("test.macro_counter").get(), 1);
        metric_gauge!("test.macro_gauge").set(3.0);
        assert_eq!(gauge("test.macro_gauge").get(), 3.0);
        metric_histogram!("test.macro_hist", 0.0, 1.0, 2).record(0.25);
        assert_eq!(histogram("test.macro_hist", 0.0, 1.0, 2).count(), 1);
    }

    #[test]
    fn trace_ring_bounds_and_drains() {
        trace_enable(3);
        for i in 0..5 {
            sim_trace!(i as f64, "test", "event {i}");
        }
        let (events, dropped) = trace_drain();
        assert_eq!(events.len(), 3, "ring keeps the newest 3");
        assert_eq!(dropped, 2);
        assert_eq!(events[0].message, "event 2");
        assert_eq!(events[2].message, "event 4");
        assert_eq!(events[2].t, 4.0);
        // Drained but still enabled: new events accumulate again.
        sim_trace!(9.0, "test", "later");
        let (events, dropped) = trace_drain();
        assert_eq!(events.len(), 1);
        assert_eq!(dropped, 0);
        trace_disable();
    }

    #[test]
    fn trace_off_by_default_on_fresh_threads() {
        std::thread::spawn(|| {
            // Even if another test armed tracing globally, this thread has
            // no ring, so events vanish without side effects.
            sim_trace!(0.0, "test", "dropped silently");
            let (events, dropped) = trace_drain();
            assert!(events.is_empty());
            assert_eq!(dropped, 0);
        })
        .join()
        .expect("thread ok");
    }

    #[test]
    fn json_escaping_is_valid() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.25), "1.25");
    }
}
