//! The discrete-event execution loop.
//!
//! [`Engine`] advances virtual time by repeatedly popping the earliest
//! pending event and handing it to a handler, which may schedule further
//! events. The engine owns the clock and the queue; protocol state lives in
//! the handler's environment.

use crate::event::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};

/// Why [`Engine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The time horizon was reached with events still pending.
    HorizonReached,
    /// The handler requested a stop.
    Stopped,
    /// The event budget was exhausted (runaway-loop protection).
    BudgetExhausted,
}

/// Handler verdict after each event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep processing events.
    Continue,
    /// Stop the run after this event.
    Stop,
}

/// A discrete-event engine over event payloads of type `E`.
///
/// # Examples
///
/// Simulate a node that re-arms a periodic beacon three times:
///
/// ```
/// use jrsnd_sim::engine::{Control, Engine, RunOutcome};
/// use jrsnd_sim::time::{SimDuration, SimTime};
///
/// #[derive(Debug)]
/// struct Beacon(u32);
///
/// let mut engine = Engine::new();
/// engine.schedule_at(SimTime::ZERO, Beacon(0));
/// let mut fired = Vec::new();
/// let outcome = engine.run(SimTime::MAX, |eng, now, Beacon(k)| {
///     fired.push((now, k));
///     if k < 2 {
///         eng.schedule_in(SimDuration::from_millis(10), Beacon(k + 1));
///     }
///     Control::Continue
/// });
/// assert_eq!(outcome, RunOutcome::Drained);
/// assert_eq!(fired.len(), 3);
/// assert_eq!(fired[2].0, SimTime::from_nanos(20_000_000));
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    events_processed: u64,
    event_budget: u64,
    queue_high_water: usize,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine at time zero with an effectively unlimited event
    /// budget.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            events_processed: 0,
            event_budget: u64::MAX,
            queue_high_water: 0,
        }
    }

    /// Caps the total number of events the engine will process, as a guard
    /// against accidental event storms. The run returns
    /// [`RunOutcome::BudgetExhausted`] when exceeded.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The largest number of simultaneously pending events observed so
    /// far — a proxy for how bursty the scenario's scheduling is.
    pub fn queue_high_water(&self) -> usize {
        self.queue_high_water
    }

    /// Schedules an event at an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `time` is before the current virtual time; the past is
    /// immutable in a discrete-event simulation.
    pub fn schedule_at(&mut self, time: SimTime, payload: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule into the past: now={}, requested={}",
            self.now,
            time
        );
        let id = self.queue.schedule(time, payload);
        self.queue_high_water = self.queue_high_water.max(self.queue.len());
        id
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventId {
        let id = self.queue.schedule(self.now + delay, payload);
        self.queue_high_water = self.queue_high_water.max(self.queue.len());
        id
    }

    /// Cancels a pending event. Returns `true` if it was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Runs until the queue drains, `horizon` is passed, the handler stops
    /// the run, or the event budget is exhausted.
    ///
    /// The handler receives the engine (to schedule/cancel), the event's
    /// firing time (equal to [`Engine::now`]), and the payload.
    pub fn run<F>(&mut self, horizon: SimTime, mut handler: F) -> RunOutcome
    where
        F: FnMut(&mut Engine<E>, SimTime, E) -> Control,
    {
        let before = self.events_processed;
        let outcome = loop {
            match self.queue.peek_time() {
                None => break RunOutcome::Drained,
                Some(t) if t > horizon => break RunOutcome::HorizonReached,
                Some(_) => {}
            }
            if self.events_processed >= self.event_budget {
                break RunOutcome::BudgetExhausted;
            }
            let (time, payload) = self.queue.pop().expect("peeked event vanished");
            self.now = time;
            self.events_processed += 1;
            // Temporarily take the queue is unnecessary: the handler gets
            // `&mut self`, so we move the payload out first.
            if let Control::Stop = handler(self, time, payload) {
                break RunOutcome::Stopped;
            }
        };
        crate::metric_counter!("engine.events_dispatched").add(self.events_processed - before);
        crate::metric_counter!("engine.runs").inc();
        crate::metric_gauge!("engine.queue_high_water").set_max(self.queue_high_water as f64);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_empty_queue_immediately() {
        let mut e: Engine<()> = Engine::new();
        assert_eq!(
            e.run(SimTime::MAX, |_, _, _| Control::Continue),
            RunOutcome::Drained
        );
        assert_eq!(e.events_processed(), 0);
    }

    #[test]
    fn horizon_stops_before_future_events() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(10), "far");
        let out = e.run(SimTime::from_secs(5), |_, _, _| Control::Continue);
        assert_eq!(out, RunOutcome::HorizonReached);
        assert_eq!(e.pending(), 1);
        // Resuming with a later horizon picks the event up.
        let out = e.run(SimTime::from_secs(20), |_, _, _| Control::Continue);
        assert_eq!(out, RunOutcome::Drained);
    }

    #[test]
    fn handler_stop_is_respected() {
        let mut e = Engine::new();
        for i in 0..10u32 {
            e.schedule_at(SimTime::from_nanos(u64::from(i)), i);
        }
        let mut seen = 0;
        let out = e.run(SimTime::MAX, |_, _, i| {
            seen += 1;
            if i == 4 {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        assert_eq!(out, RunOutcome::Stopped);
        assert_eq!(seen, 5);
        assert_eq!(e.pending(), 5);
    }

    #[test]
    fn budget_guards_against_storms() {
        let mut e = Engine::new().with_event_budget(100);
        e.schedule_at(SimTime::ZERO, ());
        let out = e.run(SimTime::MAX, |eng, _, ()| {
            // Pathological self-rescheduling at the same instant.
            eng.schedule_in(SimDuration::ZERO, ());
            Control::Continue
        });
        assert_eq!(out, RunOutcome::BudgetExhausted);
        assert_eq!(e.events_processed(), 100);
    }

    #[test]
    fn now_advances_monotonically() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_nanos(5), ());
        e.schedule_at(SimTime::from_nanos(3), ());
        e.schedule_at(SimTime::from_nanos(9), ());
        let mut last = SimTime::ZERO;
        e.run(SimTime::MAX, |eng, now, ()| {
            assert!(now >= last);
            assert_eq!(eng.now(), now);
            last = now;
            Control::Continue
        });
        assert_eq!(last, SimTime::from_nanos(9));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(1), ());
        e.run(SimTime::MAX, |eng, _, ()| {
            eng.schedule_at(SimTime::ZERO, ());
            Control::Continue
        });
    }

    #[test]
    fn queue_high_water_tracks_peak_pending() {
        let mut e = Engine::new();
        for i in 0..4u64 {
            e.schedule_at(SimTime::from_nanos(i), ());
        }
        assert_eq!(e.queue_high_water(), 4);
        e.run(SimTime::MAX, |_, _, ()| Control::Continue);
        // Draining does not lower the recorded peak.
        assert_eq!(e.pending(), 0);
        assert_eq!(e.queue_high_water(), 4);
        let snap = crate::metrics::snapshot();
        assert!(snap.counter("engine.events_dispatched").unwrap_or(0) >= 4);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut e = Engine::new();
        let a = e.schedule_at(SimTime::from_nanos(1), 1);
        e.schedule_at(SimTime::from_nanos(2), 2);
        e.cancel(a);
        let mut fired = Vec::new();
        e.run(SimTime::MAX, |_, _, v| {
            fired.push(v);
            Control::Continue
        });
        assert_eq!(fired, vec![2]);
    }
}
