//! The discrete-event execution loop.
//!
//! [`Engine`] advances virtual time by repeatedly popping the earliest
//! pending event and handing it to a handler, which may schedule further
//! events. The engine owns the clock and the queue; protocol state lives in
//! the handler's environment.

use crate::event::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};
use crate::wheel::TimingWheel;

/// Which pending-event structure an [`Engine`] runs on.
///
/// Both obey the identical determinism contract — events fire in
/// `(time, schedule-order)` — so a run's outputs are byte-identical
/// across backends; the heap queue is retained as the reference oracle
/// the timing wheel is continuously checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Hierarchical timing wheel ([`crate::wheel::TimingWheel`]):
    /// O(1) schedule, amortized O(1) pop. The default.
    #[default]
    Wheel,
    /// The original binary-heap [`crate::event::EventQueue`] —
    /// O(log n) operations, kept as the reference implementation.
    ReferenceHeap,
}

/// The pending-event set behind an [`Engine`], dispatching to the chosen
/// scheduler.
#[derive(Debug)]
enum Backend<E> {
    Wheel(Box<TimingWheel<E>>),
    Heap(EventQueue<E>),
}

impl<E> Backend<E> {
    fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        match self {
            Backend::Wheel(w) => w.schedule(time, payload),
            Backend::Heap(q) => q.schedule(time, payload),
        }
    }

    fn cancel(&mut self, id: EventId) -> bool {
        match self {
            Backend::Wheel(w) => w.cancel(id),
            Backend::Heap(q) => q.cancel(id),
        }
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        match self {
            Backend::Wheel(w) => w.pop(),
            Backend::Heap(q) => q.pop(),
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        match self {
            Backend::Wheel(w) => w.peek_time(),
            Backend::Heap(q) => q.peek_time(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Backend::Wheel(w) => w.len(),
            Backend::Heap(q) => q.len(),
        }
    }
}

/// Why [`Engine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The time horizon was reached with events still pending.
    HorizonReached,
    /// The handler requested a stop.
    Stopped,
    /// The event budget was exhausted (runaway-loop protection).
    BudgetExhausted,
}

/// Handler verdict after each event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep processing events.
    Continue,
    /// Stop the run after this event.
    Stop,
}

/// A discrete-event engine over event payloads of type `E`.
///
/// # Examples
///
/// Simulate a node that re-arms a periodic beacon three times:
///
/// ```
/// use jrsnd_sim::engine::{Control, Engine, RunOutcome};
/// use jrsnd_sim::time::{SimDuration, SimTime};
///
/// #[derive(Debug)]
/// struct Beacon(u32);
///
/// let mut engine = Engine::new();
/// engine.schedule_at(SimTime::ZERO, Beacon(0));
/// let mut fired = Vec::new();
/// let outcome = engine.run(SimTime::MAX, |eng, now, Beacon(k)| {
///     fired.push((now, k));
///     if k < 2 {
///         eng.schedule_in(SimDuration::from_millis(10), Beacon(k + 1));
///     }
///     Control::Continue
/// });
/// assert_eq!(outcome, RunOutcome::Drained);
/// assert_eq!(fired.len(), 3);
/// assert_eq!(fired[2].0, SimTime::from_nanos(20_000_000));
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    queue: Backend<E>,
    now: SimTime,
    events_processed: u64,
    event_budget: u64,
    queue_high_water: usize,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine at time zero with an effectively unlimited event
    /// budget, running on the default timing-wheel scheduler.
    pub fn new() -> Self {
        Engine::with_scheduler(SchedulerKind::default())
    }

    /// Creates an engine on an explicit scheduler backend. Outputs are
    /// byte-identical across backends; `ReferenceHeap` exists so tests can
    /// replay a run against the oracle scheduler.
    pub fn with_scheduler(kind: SchedulerKind) -> Self {
        Engine {
            queue: match kind {
                SchedulerKind::Wheel => Backend::Wheel(Box::default()),
                SchedulerKind::ReferenceHeap => Backend::Heap(EventQueue::new()),
            },
            now: SimTime::ZERO,
            events_processed: 0,
            event_budget: u64::MAX,
            queue_high_water: 0,
        }
    }

    /// The scheduler backend this engine runs on.
    pub fn scheduler(&self) -> SchedulerKind {
        match self.queue {
            Backend::Wheel(_) => SchedulerKind::Wheel,
            Backend::Heap(_) => SchedulerKind::ReferenceHeap,
        }
    }

    /// Caps the total number of events the engine will process, as a guard
    /// against accidental event storms. The run returns
    /// [`RunOutcome::BudgetExhausted`] when exceeded.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The largest number of simultaneously pending events observed so
    /// far — a proxy for how bursty the scenario's scheduling is.
    pub fn queue_high_water(&self) -> usize {
        self.queue_high_water
    }

    /// Schedules an event at an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `time` is before the current virtual time; the past is
    /// immutable in a discrete-event simulation.
    pub fn schedule_at(&mut self, time: SimTime, payload: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule into the past: now={}, requested={}",
            self.now,
            time
        );
        let id = self.queue.schedule(time, payload);
        self.queue_high_water = self.queue_high_water.max(self.queue.len());
        id
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventId {
        let id = self.queue.schedule(self.now + delay, payload);
        self.queue_high_water = self.queue_high_water.max(self.queue.len());
        id
    }

    /// Cancels a pending event. Returns `true` if it was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Runs until the queue drains, `horizon` is passed, the handler stops
    /// the run, or the event budget is exhausted.
    ///
    /// The handler receives the engine (to schedule/cancel), the event's
    /// firing time (equal to [`Engine::now`]), and the payload.
    pub fn run<F>(&mut self, horizon: SimTime, mut handler: F) -> RunOutcome
    where
        F: FnMut(&mut Engine<E>, SimTime, E) -> Control,
    {
        let before = self.events_processed;
        let outcome = loop {
            match self.queue.peek_time() {
                None => break RunOutcome::Drained,
                Some(t) if t > horizon => break RunOutcome::HorizonReached,
                Some(_) => {}
            }
            if self.events_processed >= self.event_budget {
                break RunOutcome::BudgetExhausted;
            }
            let (time, payload) = self.queue.pop().expect("peeked event vanished");
            self.now = time;
            self.events_processed += 1;
            // Temporarily take the queue is unnecessary: the handler gets
            // `&mut self`, so we move the payload out first.
            if let Control::Stop = handler(self, time, payload) {
                break RunOutcome::Stopped;
            }
        };
        crate::metric_counter!("engine.events_dispatched").add(self.events_processed - before);
        crate::metric_counter!("engine.runs").inc();
        crate::metric_gauge!("engine.queue_high_water").set_max(self.queue_high_water as f64);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_empty_queue_immediately() {
        let mut e: Engine<()> = Engine::new();
        assert_eq!(
            e.run(SimTime::MAX, |_, _, _| Control::Continue),
            RunOutcome::Drained
        );
        assert_eq!(e.events_processed(), 0);
    }

    #[test]
    fn horizon_stops_before_future_events() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(10), "far");
        let out = e.run(SimTime::from_secs(5), |_, _, _| Control::Continue);
        assert_eq!(out, RunOutcome::HorizonReached);
        assert_eq!(e.pending(), 1);
        // Resuming with a later horizon picks the event up.
        let out = e.run(SimTime::from_secs(20), |_, _, _| Control::Continue);
        assert_eq!(out, RunOutcome::Drained);
    }

    #[test]
    fn handler_stop_is_respected() {
        let mut e = Engine::new();
        for i in 0..10u32 {
            e.schedule_at(SimTime::from_nanos(u64::from(i)), i);
        }
        let mut seen = 0;
        let out = e.run(SimTime::MAX, |_, _, i| {
            seen += 1;
            if i == 4 {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        assert_eq!(out, RunOutcome::Stopped);
        assert_eq!(seen, 5);
        assert_eq!(e.pending(), 5);
    }

    #[test]
    fn budget_guards_against_storms() {
        let mut e = Engine::new().with_event_budget(100);
        e.schedule_at(SimTime::ZERO, ());
        let out = e.run(SimTime::MAX, |eng, _, ()| {
            // Pathological self-rescheduling at the same instant.
            eng.schedule_in(SimDuration::ZERO, ());
            Control::Continue
        });
        assert_eq!(out, RunOutcome::BudgetExhausted);
        assert_eq!(e.events_processed(), 100);
    }

    #[test]
    fn now_advances_monotonically() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_nanos(5), ());
        e.schedule_at(SimTime::from_nanos(3), ());
        e.schedule_at(SimTime::from_nanos(9), ());
        let mut last = SimTime::ZERO;
        e.run(SimTime::MAX, |eng, now, ()| {
            assert!(now >= last);
            assert_eq!(eng.now(), now);
            last = now;
            Control::Continue
        });
        assert_eq!(last, SimTime::from_nanos(9));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(1), ());
        e.run(SimTime::MAX, |eng, _, ()| {
            eng.schedule_at(SimTime::ZERO, ());
            Control::Continue
        });
    }

    #[test]
    fn queue_high_water_tracks_peak_pending() {
        let mut e = Engine::new();
        for i in 0..4u64 {
            e.schedule_at(SimTime::from_nanos(i), ());
        }
        assert_eq!(e.queue_high_water(), 4);
        e.run(SimTime::MAX, |_, _, ()| Control::Continue);
        // Draining does not lower the recorded peak.
        assert_eq!(e.pending(), 0);
        assert_eq!(e.queue_high_water(), 4);
        let snap = crate::metrics::snapshot();
        assert!(snap.counter("engine.events_dispatched").unwrap_or(0) >= 4);
    }

    #[test]
    fn default_engine_runs_on_the_wheel() {
        let e: Engine<()> = Engine::new();
        assert_eq!(e.scheduler(), SchedulerKind::Wheel);
        let r: Engine<()> = Engine::with_scheduler(SchedulerKind::ReferenceHeap);
        assert_eq!(r.scheduler(), SchedulerKind::ReferenceHeap);
    }

    #[test]
    fn wheel_and_heap_backends_produce_identical_traces() {
        // A self-rescheduling workload with cancellations, same-instant
        // collisions, and firing times spanning several wheel levels; the
        // dispatch trace must be identical event-for-event.
        fn trace(kind: SchedulerKind) -> Vec<(SimTime, u64)> {
            let mut e: Engine<u64> = Engine::with_scheduler(kind);
            for i in 0..64u64 {
                e.schedule_at(SimTime::from_nanos((i % 7) * 1_000_003), i);
            }
            let mut cancellable = Vec::new();
            for i in 0..16u64 {
                cancellable.push(e.schedule_at(SimTime::from_nanos(500 + i), 1000 + i));
            }
            for id in cancellable.iter().step_by(2) {
                e.cancel(*id);
            }
            let mut out = Vec::new();
            e.run(SimTime::MAX, |eng, now, v| {
                out.push((now, v));
                if v < 200 {
                    // Mix of short and cross-level re-arms.
                    eng.schedule_in(SimDuration::from_nanos(1 + (v % 5) * 40_000_000), v + 200);
                }
                Control::Continue
            });
            out
        }
        let wheel = trace(SchedulerKind::Wheel);
        let heap = trace(SchedulerKind::ReferenceHeap);
        assert_eq!(wheel.len(), heap.len());
        assert_eq!(wheel, heap);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut e = Engine::new();
        let a = e.schedule_at(SimTime::from_nanos(1), 1);
        e.schedule_at(SimTime::from_nanos(2), 2);
        e.cancel(a);
        let mut fired = Vec::new();
        e.run(SimTime::MAX, |_, _, v| {
            fired.push(v);
            Control::Continue
        });
        assert_eq!(fired, vec![2]);
    }
}
