//! Runtime SIMD capability detection for the dispatched kernels.
//!
//! The workspace historically committed `-C target-cpu=native`, which makes
//! binaries non-portable: the autovectorized correlate/render/SHA-256
//! kernels compile to whatever the build host supports. Runtime dispatch
//! removes that coupling for the service path: each kernel crate compiles
//! its hot inner loop three times (baseline, SSE4.1, AVX2) behind
//! `#[target_feature]`, and picks the widest level the *running* CPU
//! reports — detected once per process via
//! [`std::arch::is_x86_feature_detected!`].
//!
//! Every dispatched kernel is pure integer arithmetic, so the three
//! compilations are bit-identical by construction; the kernel-equivalence
//! suite asserts it anyway for each level the host can execute.
//!
//! The selection is overridable for tests and benchmarks through the
//! `JRSND_SIMD` environment variable (`scalar`, `sse4.1`, `avx2`, or
//! `auto`; requests above what the CPU supports clamp down to
//! [`detected`]), read once at first use.

use std::sync::OnceLock;

/// An instruction-set level a dispatched kernel may be compiled for.
///
/// Ordered: `Scalar < Sse41 < Avx2`, so clamping a requested level to the
/// detected one is `min`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdLevel {
    /// The compilation baseline — no runtime feature requirement. Still
    /// autovectorized to whatever the build target allows.
    Scalar,
    /// SSE4.1 (x86-64-v2 territory): 128-bit integer lanes.
    Sse41,
    /// AVX2 (x86-64-v3): 256-bit integer lanes.
    Avx2,
}

impl SimdLevel {
    /// Human-readable name, as accepted by `JRSND_SIMD`.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse41 => "sse4.1",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// The widest level the running CPU supports, ignoring any override.
///
/// On non-x86-64 targets this is always [`SimdLevel::Scalar`] — the
/// baseline kernels are the only compiled variants there.
pub fn detected() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
        if std::arch::is_x86_feature_detected!("sse4.1") {
            return SimdLevel::Sse41;
        }
    }
    SimdLevel::Scalar
}

/// The level the dispatched kernels actually run at: [`detected`], capped
/// by the `JRSND_SIMD` environment variable when set. Resolved once per
/// process and cached.
pub fn active() -> SimdLevel {
    static ACTIVE: OnceLock<SimdLevel> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let hw = detected();
        match std::env::var("JRSND_SIMD").as_deref() {
            Ok("scalar") => SimdLevel::Scalar,
            Ok("sse4.1" | "sse41") => hw.min(SimdLevel::Sse41),
            Ok("avx2") => hw.min(SimdLevel::Avx2),
            // Unknown values (and "auto") take the hardware's answer: a
            // typo must never silently drop to scalar.
            _ => hw,
        }
    })
}

/// Every level from [`SimdLevel::Scalar`] up to and including `top` —
/// the levels a host with capability `top` can execute. Used by the
/// kernel-equivalence tests to sweep all runnable variants.
pub fn levels_up_to(top: SimdLevel) -> &'static [SimdLevel] {
    match top {
        SimdLevel::Scalar => &[SimdLevel::Scalar],
        SimdLevel::Sse41 => &[SimdLevel::Scalar, SimdLevel::Sse41],
        SimdLevel::Avx2 => &[SimdLevel::Scalar, SimdLevel::Sse41, SimdLevel::Avx2],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(SimdLevel::Scalar < SimdLevel::Sse41);
        assert!(SimdLevel::Sse41 < SimdLevel::Avx2);
    }

    #[test]
    fn active_never_exceeds_detected() {
        // Whatever JRSND_SIMD says, the cached selection must be runnable.
        assert!(active() <= detected());
    }

    #[test]
    fn levels_up_to_ends_at_top() {
        for top in [SimdLevel::Scalar, SimdLevel::Sse41, SimdLevel::Avx2] {
            let ls = levels_up_to(top);
            assert_eq!(*ls.last().unwrap(), top);
            assert_eq!(ls[0], SimdLevel::Scalar);
            assert!(ls.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(SimdLevel::Avx2.name(), "avx2");
        assert_eq!(SimdLevel::Sse41.name(), "sse4.1");
        assert_eq!(SimdLevel::Scalar.name(), "scalar");
    }

    /// CI hook: when `JRSND_SIMD_EXPECT` names a level, the dispatched
    /// selection must be exactly that level. The portable (x86-64-v2)
    /// job sets `JRSND_SIMD_EXPECT=avx2` to prove runtime detection
    /// engages the AVX2 kernels even when the build target could not
    /// assume them. A no-op when the variable is unset, so local runs on
    /// arbitrary hardware stay green.
    #[test]
    fn dispatch_matches_expectation_env() {
        if let Ok(want) = std::env::var("JRSND_SIMD_EXPECT") {
            let got = active();
            println!("dispatch: active SIMD level = {}", got.name());
            assert_eq!(got.name(), want, "dispatched level != JRSND_SIMD_EXPECT");
        }
    }
}
