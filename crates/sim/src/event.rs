//! The pending-event set of the discrete-event simulator.
//!
//! [`EventQueue`] is a priority queue ordered by firing time with FIFO
//! tie-breaking: two events scheduled for the same instant fire in the order
//! they were scheduled. That determinism is what lets a whole network run be
//! replayed bit-for-bit from its seed.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifies a scheduled event so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// Wraps a raw sequence number (shared with the timing-wheel backend).
    pub(crate) fn from_raw(seq: u64) -> Self {
        EventId(seq)
    }

    /// The raw sequence number.
    pub(crate) fn raw(self) -> u64 {
        self.0
    }
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    cancelled: bool,
    payload: E,
}

// Order entries so that the *smallest* (time, seq) is popped first from
// `BinaryHeap`, which is a max-heap: reverse the comparison.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered, FIFO-stable queue of simulation events carrying payloads
/// of type `E`.
///
/// # Examples
///
/// ```
/// use jrsnd_sim::event::EventQueue;
/// use jrsnd_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "late");
/// q.schedule(SimTime::from_nanos(10), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_nanos(10), "early"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Sequence numbers scheduled but neither fired nor cancelled.
    live: std::collections::HashSet<u64>,
    /// Cancelled sequence numbers whose heap entries are still pending
    /// lazy removal.
    cancelled: std::collections::HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            live: std::collections::HashSet::new(),
            cancelled: std::collections::HashSet::new(),
        }
    }

    /// Schedules `payload` to fire at `time`, returning a handle usable with
    /// [`EventQueue::cancel`].
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time,
            seq,
            cancelled: false,
            payload,
        });
        self.live.insert(seq);
        EventId(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending. Cancelling an already
    /// fired or already cancelled event returns `false` and has no effect.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.live.remove(&id.0) {
            // Lazy removal: the heap entry is skipped when it surfaces.
            self.cancelled.insert(id.0);
            // Restore the peek invariant in case we just killed the head.
            self.drop_cancelled_heads();
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest pending event, skipping cancelled
    /// entries. Returns `None` when no live event remains.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(!entry.cancelled);
            self.live.remove(&entry.seq);
            // A cancelled entry buried below the popped head may now have
            // surfaced; drop it so peeking stays a shared-borrow O(1) read.
            self.drop_cancelled_heads();
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// The firing time of the earliest live event, if any.
    ///
    /// Takes `&self`: [`EventQueue::cancel`] and [`EventQueue::pop`]
    /// maintain the invariant that the heap head is never a cancelled
    /// entry, so peeking never needs to clean up.
    pub fn peek_time(&self) -> Option<SimTime> {
        let entry = self.heap.peek()?;
        debug_assert!(!self.cancelled.contains(&entry.seq));
        Some(entry.time)
    }

    /// Removes cancelled entries sitting at the heap head, upholding the
    /// invariant that makes [`EventQueue::peek_time`] a shared-borrow read.
    fn drop_cancelled_heads(&mut self) {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                break;
            }
        }
    }

    /// Number of live (scheduled, not cancelled, not yet fired) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        let _b = q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_twice_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        q.pop().unwrap();
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_after_fire_with_other_live_events_is_noop() {
        // Regression: cancelling an already-fired event while another is
        // still live used to corrupt len() and report a phantom cancel.
        let mut q = EventQueue::new();
        let fast = q.schedule(t(0), "fast");
        q.schedule(t(319), "slow");
        assert_eq!(q.pop().unwrap().1, "fast");
        assert!(!q.cancel(fast), "fast already fired");
        assert_eq!(q.len(), 1, "slow is still live");
        assert_eq!(q.pop().unwrap().1, "slow");
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
    }

    #[test]
    fn len_tracks_schedule_cancel_pop() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(t(1), ());
        q.schedule(t(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}

#[cfg(test)]
pub(crate) mod proptests {
    use super::*;
    use crate::time::SimTime;
    use proptest::prelude::*;

    /// Operations the reference model replays against the queue.
    #[derive(Debug, Clone)]
    pub(crate) enum Op {
        Schedule(u64),
        CancelNth(usize),
        Pop,
        Peek,
    }

    pub(crate) fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..1000).prop_map(Op::Schedule),
            (0usize..64).prop_map(Op::CancelNth),
            Just(Op::Pop),
            Just(Op::Peek),
        ]
    }

    proptest! {
        /// The queue must agree with a naive reference model (a vector of
        /// live (time, seq) entries popped by minimum) under arbitrary
        /// interleavings of schedule/cancel/pop.
        #[test]
        fn queue_matches_reference_model(ops in proptest::collection::vec(arb_op(), 1..200)) {
            let mut queue: EventQueue<u64> = EventQueue::new();
            // Reference: (time, seq, payload) triples still live.
            let mut model: Vec<(u64, u64, u64)> = Vec::new();
            let mut ids: Vec<(EventId, u64)> = Vec::new(); // (id, seq), incl. dead
            let mut next_seq = 0u64;
            for op in ops {
                match op {
                    Op::Schedule(t) => {
                        let id = queue.schedule(SimTime::from_nanos(t), next_seq);
                        model.push((t, next_seq, next_seq));
                        ids.push((id, next_seq));
                        next_seq += 1;
                    }
                    Op::CancelNth(k) => {
                        if ids.is_empty() {
                            continue;
                        }
                        let (id, seq) = ids[k % ids.len()];
                        let was_live = model.iter().any(|&(_, s, _)| s == seq);
                        prop_assert_eq!(queue.cancel(id), was_live);
                        model.retain(|&(_, s, _)| s != seq);
                    }
                    Op::Pop => {
                        let expect = model
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, &(t, s, _))| (t, s))
                            .map(|(i, &(t, _, p))| (i, t, p));
                        match (queue.pop(), expect) {
                            (Some((qt, qp)), Some((i, t, p))) => {
                                prop_assert_eq!(qt, SimTime::from_nanos(t));
                                prop_assert_eq!(qp, p);
                                model.remove(i);
                            }
                            (None, None) => {}
                            (got, want) => {
                                return Err(TestCaseError::fail(format!(
                                    "queue {got:?} vs model {want:?}"
                                )));
                            }
                        }
                    }
                    Op::Peek => {
                        // Exercised through a shared borrow: peeking must
                        // not require `&mut` and must not disturb state.
                        let shared: &EventQueue<u64> = &queue;
                        let want = model.iter().map(|&(t, s, _)| (t, s)).min().map(|(t, _)| t);
                        prop_assert_eq!(shared.peek_time(), want.map(SimTime::from_nanos));
                        prop_assert_eq!(shared.peek_time(), want.map(SimTime::from_nanos));
                    }
                }
                prop_assert_eq!(queue.len(), model.len());
                // The shared-borrow peek agrees with the model after *every*
                // operation, whatever interleaving produced the state.
                let min_time = model.iter().map(|&(t, s, _)| (t, s)).min().map(|(t, _)| t);
                prop_assert_eq!(queue.peek_time(), min_time.map(SimTime::from_nanos));
            }
            // Drain: remaining pops must come out in (time, seq) order.
            model.sort_unstable();
            for &(t, _, p) in &model {
                let (qt, qp) = queue.pop().expect("model says more events remain");
                prop_assert_eq!(qt, SimTime::from_nanos(t));
                prop_assert_eq!(qp, p);
            }
            prop_assert!(queue.pop().is_none());
        }
    }
}
