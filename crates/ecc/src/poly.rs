//! Polynomials over GF(2⁸), the workhorse of the Reed–Solomon codec.
//!
//! Coefficients are stored lowest-degree first: `p.coeff(i)` is the
//! coefficient of xⁱ. The zero polynomial is the empty coefficient vector.

use crate::gf256::Gf256;

/// A polynomial over GF(2⁸), lowest-degree coefficient first.
///
/// # Examples
///
/// ```
/// use jrsnd_ecc::gf256::Gf256;
/// use jrsnd_ecc::poly::Poly;
///
/// // p(x) = 1 + 2x
/// let p = Poly::from_coeffs(vec![Gf256::new(1), Gf256::new(2)]);
/// assert_eq!(p.eval(Gf256::new(3)), Gf256::new(1) + Gf256::new(2) * Gf256::new(3));
/// assert_eq!(p.degree(), Some(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Poly {
    coeffs: Vec<Gf256>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Poly {
            coeffs: vec![Gf256::ONE],
        }
    }

    /// Builds from coefficients (lowest degree first); trailing zeros are
    /// trimmed.
    pub fn from_coeffs(coeffs: Vec<Gf256>) -> Self {
        let mut p = Poly { coeffs };
        p.trim();
        p
    }

    /// The monomial `c·xᵈ`.
    pub fn monomial(c: Gf256, d: usize) -> Self {
        if c.is_zero() {
            return Poly::zero();
        }
        let mut coeffs = vec![Gf256::ZERO; d + 1];
        coeffs[d] = c;
        Poly { coeffs }
    }

    fn trim(&mut self) {
        while self.coeffs.last().is_some_and(|c| c.is_zero()) {
            self.coeffs.pop();
        }
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        if self.coeffs.is_empty() {
            None
        } else {
            Some(self.coeffs.len() - 1)
        }
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Coefficient of xⁱ (zero beyond the degree).
    pub fn coeff(&self, i: usize) -> Gf256 {
        self.coeffs.get(i).copied().unwrap_or(Gf256::ZERO)
    }

    /// Coefficients, lowest degree first.
    pub fn coeffs(&self) -> &[Gf256] {
        &self.coeffs
    }

    /// Evaluates at `x` by Horner's rule.
    pub fn eval(&self, x: Gf256) -> Gf256 {
        let mut acc = Gf256::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Adds two polynomials.
    pub fn add(&self, other: &Poly) -> Poly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let coeffs = (0..n).map(|i| self.coeff(i) + other.coeff(i)).collect();
        Poly::from_coeffs(coeffs)
    }

    /// Multiplies two polynomials (schoolbook; degrees here are ≤ 255).
    pub fn mul(&self, other: &Poly) -> Poly {
        if self.is_zero() || other.is_zero() {
            return Poly::zero();
        }
        let mut coeffs = vec![Gf256::ZERO; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Poly::from_coeffs(coeffs)
    }

    /// Multiplies by a scalar.
    pub fn scale(&self, s: Gf256) -> Poly {
        Poly::from_coeffs(self.coeffs.iter().map(|&c| c * s).collect())
    }

    /// Multiplies by xᵏ (shift up).
    pub fn shift(&self, k: usize) -> Poly {
        if self.is_zero() {
            return Poly::zero();
        }
        let mut coeffs = vec![Gf256::ZERO; k];
        coeffs.extend_from_slice(&self.coeffs);
        Poly { coeffs }
    }

    /// Euclidean division: returns `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Poly) -> (Poly, Poly) {
        let d_deg = divisor.degree().expect("division by zero polynomial");
        let d_lead_inv = divisor.coeffs[d_deg]
            .inverse()
            .expect("leading coefficient is nonzero by trim invariant");
        let mut rem = self.clone();
        let mut quot = Poly::zero();
        while let Some(r_deg) = rem.degree() {
            if r_deg < d_deg {
                break;
            }
            let factor = rem.coeffs[r_deg] * d_lead_inv;
            let shift = r_deg - d_deg;
            quot = quot.add(&Poly::monomial(factor, shift));
            rem = rem.add(&divisor.scale(factor).shift(shift));
        }
        (quot, rem)
    }

    /// The formal derivative. In characteristic 2 the even-power terms
    /// vanish: d/dx Σ cᵢxⁱ = Σ_{i odd} cᵢ x^{i−1}.
    pub fn derivative(&self) -> Poly {
        let coeffs = self
            .coeffs
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, &c)| if i % 2 == 1 { c } else { Gf256::ZERO })
            .collect();
        Poly::from_coeffs(coeffs)
    }
}

impl std::fmt::Display for Poly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let terms: Vec<String> = self
            .coeffs
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_zero())
            .map(|(i, c)| match i {
                0 => format!("{c}"),
                1 => format!("{c}*x"),
                _ => format!("{c}*x^{i}"),
            })
            .collect();
        write!(f, "{}", terms.join(" + "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(coeffs: &[u8]) -> Poly {
        Poly::from_coeffs(coeffs.iter().map(|&c| Gf256::new(c)).collect())
    }

    #[test]
    fn zero_and_one() {
        assert!(Poly::zero().is_zero());
        assert_eq!(Poly::zero().degree(), None);
        assert_eq!(Poly::one().degree(), Some(0));
        assert_eq!(Poly::one().eval(Gf256::new(200)), Gf256::ONE);
    }

    #[test]
    fn trailing_zeros_trimmed() {
        let q = p(&[1, 2, 0, 0]);
        assert_eq!(q.degree(), Some(1));
        assert_eq!(q, p(&[1, 2]));
        assert!(p(&[0, 0, 0]).is_zero());
    }

    #[test]
    fn eval_horner_matches_direct() {
        let q = p(&[7, 3, 1, 9]);
        for x in [0u8, 1, 2, 100, 255] {
            let x = Gf256::new(x);
            let direct = Gf256::new(7)
                + Gf256::new(3) * x
                + Gf256::new(1) * x.pow(2)
                + Gf256::new(9) * x.pow(3);
            assert_eq!(q.eval(x), direct);
        }
    }

    #[test]
    fn add_is_characteristic_two() {
        let q = p(&[1, 2, 3]);
        assert!(q.add(&q).is_zero());
        assert_eq!(q.add(&Poly::zero()), q);
    }

    #[test]
    fn mul_degree_and_eval_homomorphism() {
        let a = p(&[1, 2, 3]);
        let b = p(&[5, 6]);
        let prod = a.mul(&b);
        assert_eq!(prod.degree(), Some(3));
        for x in 0..=255u8 {
            let x = Gf256::new(x);
            assert_eq!(prod.eval(x), a.eval(x) * b.eval(x));
        }
    }

    #[test]
    fn div_rem_reconstructs() {
        let a = p(&[1, 0, 3, 0, 7, 9]);
        let b = p(&[3, 1, 2]);
        let (q, r) = a.div_rem(&b);
        assert!(r.degree().is_none_or(|d| d < b.degree().unwrap()));
        let back = q.mul(&b).add(&r);
        assert_eq!(back, a);
    }

    #[test]
    fn div_by_larger_degree_gives_zero_quotient() {
        let a = p(&[1, 2]);
        let b = p(&[1, 2, 3, 4]);
        let (q, r) = a.div_rem(&b);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    #[should_panic(expected = "division by zero polynomial")]
    fn div_by_zero_panics() {
        p(&[1]).div_rem(&Poly::zero());
    }

    #[test]
    fn derivative_drops_even_terms() {
        // d/dx (c0 + c1 x + c2 x^2 + c3 x^3) = c1 + 3 c3 x^2 = c1 + c3 x^2 (3 odd => coeff stays; in char 2: i*c_i = c_i for odd i, 0 for even)
        let q = p(&[9, 5, 7, 11]);
        let d = q.derivative();
        assert_eq!(d, p(&[5, 0, 11]));
        assert!(Poly::one().derivative().is_zero());
    }

    #[test]
    fn monomial_and_shift() {
        let m = Poly::monomial(Gf256::new(4), 3);
        assert_eq!(m.degree(), Some(3));
        assert_eq!(m.coeff(3), Gf256::new(4));
        assert_eq!(p(&[1, 2]).shift(2), p(&[0, 0, 1, 2]));
        assert!(Poly::monomial(Gf256::ZERO, 5).is_zero());
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Poly::zero().to_string(), "0");
        assert!(p(&[1, 0, 2]).to_string().contains("x^2"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_poly(max_len: usize) -> impl Strategy<Value = Poly> {
        proptest::collection::vec(0u8..=255, 0..max_len)
            .prop_map(|v| Poly::from_coeffs(v.into_iter().map(Gf256::new).collect()))
    }

    proptest! {
        #[test]
        fn mul_commutes(a in arb_poly(12), b in arb_poly(12)) {
            prop_assert_eq!(a.mul(&b), b.mul(&a));
        }

        #[test]
        fn div_rem_invariant(a in arb_poly(16), b in arb_poly(8)) {
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert_eq!(q.mul(&b).add(&r), a);
            if let Some(rd) = r.degree() {
                prop_assert!(rd < b.degree().unwrap());
            }
        }

        #[test]
        fn eval_is_linear(a in arb_poly(10), b in arb_poly(10), x in 0u8..=255) {
            let x = Gf256::new(x);
            prop_assert_eq!(a.add(&b).eval(x), a.eval(x) + b.eval(x));
        }
    }
}
