//! Arithmetic in GF(2⁸), the field underlying the Reed–Solomon codec.
//!
//! Elements are bytes; addition is XOR; multiplication is polynomial
//! multiplication modulo the primitive polynomial
//! `x⁸ + x⁴ + x³ + x² + 1` (0x11D), the conventional choice for RS(255, k).
//! Exp/log tables are built at first use and shared.

use std::sync::OnceLock;

/// The primitive polynomial 0x11D without its leading x⁸ term.
const PRIM_POLY: u16 = 0x11D;

/// The multiplicative generator α = 0x02.
pub const GENERATOR: Gf256 = Gf256(0x02);

struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        #[allow(clippy::needless_range_loop)] // i is also the exponent being logged
        for i in 0..255 {
            exp[i] = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= PRIM_POLY;
            }
        }
        // Duplicate so exp[log a + log b] never needs a mod-255 reduction.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// An element of GF(2⁸).
///
/// # Examples
///
/// ```
/// use jrsnd_ecc::gf256::Gf256;
///
/// let a = Gf256::new(0x53);
/// assert_eq!(a + a, Gf256::ZERO);      // characteristic 2
/// assert_eq!(a * a.inverse().unwrap(), Gf256::ONE);
/// assert_eq!(Gf256::new(2) * Gf256::new(3), Gf256::new(6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf256(pub u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);

    /// Wraps a byte as a field element.
    #[inline]
    pub const fn new(v: u8) -> Self {
        Gf256(v)
    }

    /// The underlying byte.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Whether this is the zero element.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// α^i for the field generator α = 2.
    #[inline]
    pub fn alpha_pow(i: usize) -> Gf256 {
        Gf256(tables().exp[i % 255])
    }

    /// Discrete log base α; `None` for zero.
    #[inline]
    pub fn log(self) -> Option<u8> {
        if self.is_zero() {
            None
        } else {
            Some(tables().log[self.0 as usize])
        }
    }

    /// Multiplicative inverse; `None` for zero.
    #[inline]
    pub fn inverse(self) -> Option<Gf256> {
        self.log().map(|l| Gf256(tables().exp[255 - l as usize]))
    }

    /// Raises to an arbitrary power (with `0⁰ = 1`).
    pub fn pow(self, e: usize) -> Gf256 {
        if e == 0 {
            return Gf256::ONE;
        }
        if self.is_zero() {
            return Gf256::ZERO;
        }
        let l = u32::from(tables().log[self.0 as usize]);
        let idx = (l as u64 * e as u64) % 255;
        Gf256(tables().exp[idx as usize])
    }
}

/// Raw exp/log tables for table-driven kernels (the Reed–Solomon hot
/// paths in [`crate::rs`]). `exp` is doubled so `exp[log a + log b]`
/// never needs a mod-255 reduction; `log[0]` is unspecified — callers
/// must branch on zero themselves.
#[inline]
pub(crate) fn raw_tables() -> (&'static [u8; 512], &'static [u8; 256]) {
    let t = tables();
    (&t.exp, &t.log)
}

/// The 256-entry multiplication table of a constant: `table[b] = c·b`.
///
/// One table per generator-polynomial coefficient turns the systematic
/// Reed–Solomon encoder into a pure LFSR of XORs and lookups.
pub fn mul_table(c: Gf256) -> [u8; 256] {
    let mut out = [0u8; 256];
    if c.is_zero() {
        return out;
    }
    let (exp, log) = raw_tables();
    let lc = log[c.0 as usize] as usize;
    for b in 1..=255usize {
        out[b] = exp[lc + log[b] as usize];
    }
    out
}

impl std::ops::Add for Gf256 {
    type Output = Gf256;
    // XOR IS addition/subtraction in a characteristic-2 field.
    #[allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)]
    #[inline]
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl std::ops::AddAssign for Gf256 {
    // XOR IS addition/subtraction in a characteristic-2 field.
    #[allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)]
    #[inline]
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl std::ops::Sub for Gf256 {
    type Output = Gf256;
    // XOR IS addition/subtraction in a characteristic-2 field.
    #[allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)]
    #[inline]
    fn sub(self, rhs: Gf256) -> Gf256 {
        // Characteristic 2: subtraction == addition.
        Gf256(self.0 ^ rhs.0)
    }
}

impl std::ops::Mul for Gf256 {
    type Output = Gf256;
    #[inline]
    fn mul(self, rhs: Gf256) -> Gf256 {
        if self.is_zero() || rhs.is_zero() {
            return Gf256::ZERO;
        }
        let t = tables();
        let idx = t.log[self.0 as usize] as usize + t.log[rhs.0 as usize] as usize;
        Gf256(t.exp[idx])
    }
}

impl std::ops::MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Gf256) {
        *self = *self * rhs;
    }
}

impl std::ops::Div for Gf256 {
    type Output = Gf256;

    /// # Panics
    ///
    /// Panics on division by zero.
    // Division is multiplication by the inverse in a field.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Gf256) -> Gf256 {
        let inv = rhs.inverse().expect("division by zero in GF(256)");
        self * inv
    }
}

impl From<u8> for Gf256 {
    fn from(v: u8) -> Self {
        Gf256(v)
    }
}

impl From<Gf256> for u8 {
    fn from(v: Gf256) -> Self {
        v.0
    }
}

impl std::fmt::Display for Gf256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#04x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_xor_and_self_inverse() {
        for a in 0..=255u8 {
            let x = Gf256(a);
            assert_eq!(x + x, Gf256::ZERO);
            assert_eq!(x + Gf256::ZERO, x);
            assert_eq!(x - x, Gf256::ZERO);
        }
    }

    #[test]
    fn multiplication_identity_and_zero() {
        for a in 0..=255u8 {
            let x = Gf256(a);
            assert_eq!(x * Gf256::ONE, x);
            assert_eq!(x * Gf256::ZERO, Gf256::ZERO);
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        assert_eq!(Gf256::ZERO.inverse(), None);
        for a in 1..=255u8 {
            let x = Gf256(a);
            let inv = x.inverse().unwrap();
            assert_eq!(x * inv, Gf256::ONE, "a = {a}");
        }
    }

    #[test]
    fn multiplication_is_commutative_and_associative_sampled() {
        // Exhaustive commutativity; sampled associativity.
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(Gf256(a) * Gf256(b), Gf256(b) * Gf256(a));
            }
        }
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(11) {
                for c in (0..=255u8).step_by(13) {
                    let (x, y, z) = (Gf256(a), Gf256(b), Gf256(c));
                    assert_eq!((x * y) * z, x * (y * z));
                    assert_eq!(x * (y + z), x * y + x * z, "distributivity");
                }
            }
        }
    }

    #[test]
    fn generator_has_full_order() {
        let mut seen = std::collections::HashSet::new();
        let mut x = Gf256::ONE;
        for _ in 0..255 {
            assert!(seen.insert(x), "generator order < 255");
            x *= GENERATOR;
        }
        assert_eq!(x, Gf256::ONE);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for a in [0u8, 1, 2, 3, 0x53, 0xFF] {
            let x = Gf256(a);
            let mut acc = Gf256::ONE;
            for e in 0..520 {
                assert_eq!(x.pow(e), acc, "a={a}, e={e}");
                acc *= x;
            }
        }
    }

    #[test]
    fn alpha_pow_wraps_at_255() {
        assert_eq!(Gf256::alpha_pow(0), Gf256::ONE);
        assert_eq!(Gf256::alpha_pow(255), Gf256::ONE);
        assert_eq!(Gf256::alpha_pow(256), GENERATOR);
        assert_eq!(Gf256::alpha_pow(1), GENERATOR);
    }

    #[test]
    fn division_round_trips() {
        for a in 1..=255u8 {
            for b in (1..=255u8).step_by(17) {
                let q = Gf256(a) / Gf256(b);
                assert_eq!(q * Gf256(b), Gf256(a));
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Gf256(5) / Gf256::ZERO;
    }

    #[test]
    fn mul_table_matches_operator() {
        for c in [0u8, 1, 2, 0x53, 0x8E, 0xFF] {
            let t = mul_table(Gf256(c));
            for b in 0..=255u8 {
                assert_eq!(t[b as usize], (Gf256(c) * Gf256(b)).value(), "c={c} b={b}");
            }
        }
    }

    #[test]
    fn log_exp_round_trip() {
        for a in 1..=255u8 {
            let l = Gf256(a).log().unwrap();
            assert_eq!(Gf256::alpha_pow(l as usize), Gf256(a));
        }
    }
}
