//! The paper's (1+μ)-expansion message coding.
//!
//! Section V-B: a D-NDP message of `L = l_t + l_id` bits is ECC-encoded into
//! `l_h = (1+μ)·L` bits such that the result tolerates up to a fraction
//! `μ/(1+μ)` of bit errors *or losses* — so a jammer must hit at least
//! `μ·L` bits with the correct spread code to destroy it.
//!
//! [`ExpansionCode`] realises that contract with Reed–Solomon at byte
//! granularity: a message of `k` data bytes becomes `n = ⌈(1+μ)k⌉` coded
//! bytes per chunk, correcting `n − k` byte erasures — exactly the
//! `μ/(1+μ)` fraction. Long messages (M-NDP requests carry neighbour lists
//! and signatures) are chunked to fit RS(255, ·) and block-interleaved so a
//! contiguous jamming burst spreads evenly across chunks.
//!
//! Jammed chips manifest as *erasures* rather than errors in a DSSS
//! receiver: the correlator sees |correlation| below the threshold τ and
//! knows the bit is unreliable. Decoding therefore takes a per-bit erasure
//! map.

use crate::interleave::BlockInterleaver;
use crate::rs::{RsCode, RsError};

/// Errors from the expansion codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpandError {
    /// μ must be positive and finite.
    BadMu,
    /// The message is empty.
    EmptyMessage,
    /// Coded input length does not match the expected geometry.
    LengthMismatch {
        /// Expected number of coded bits.
        expected: usize,
        /// Got this many.
        got: usize,
    },
    /// Too many erasures/errors to recover the message.
    Unrecoverable,
}

impl std::fmt::Display for ExpandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExpandError::BadMu => write!(f, "mu must be positive and finite"),
            ExpandError::EmptyMessage => write!(f, "message must be non-empty"),
            ExpandError::LengthMismatch { expected, got } => {
                write!(f, "expected {expected} coded bits, got {got}")
            }
            ExpandError::Unrecoverable => write!(f, "too many erasures or errors to recover"),
        }
    }
}

impl std::error::Error for ExpandError {}

impl From<RsError> for ExpandError {
    fn from(_: RsError) -> Self {
        ExpandError::Unrecoverable
    }
}

/// Geometry of one encoded message: chunk count and per-chunk RS shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Number of RS chunks.
    pub chunks: usize,
    /// Data bytes per chunk.
    pub k: usize,
    /// Coded bytes per chunk.
    pub n: usize,
}

impl Layout {
    /// Total coded bits.
    pub fn coded_bits(&self) -> usize {
        self.chunks * self.n * 8
    }
}

/// The μ-expansion coder: rate `1/(1+μ)`, tolerating a `μ/(1+μ)` fraction
/// of byte erasures per chunk.
///
/// # Examples
///
/// ```
/// use jrsnd_ecc::expand::ExpansionCode;
///
/// let code = ExpansionCode::new(1.0).unwrap(); // the paper's default mu = 1
/// let msg: Vec<bool> = (0..21).map(|i| i % 3 == 0).collect(); // l_t + l_id bits
/// let coded = code.encode_bits(&msg).unwrap();
/// // Jam (erase) the entire second half: still decodable at mu = 1.
/// let mut erased = vec![false; coded.len()];
/// for e in erased.iter_mut().skip(coded.len() / 2) { *e = true; }
/// let back = code.decode_bits(&coded, &erased, msg.len()).unwrap();
/// assert_eq!(back, msg);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpansionCode {
    mu: f64,
}

impl ExpansionCode {
    /// Creates a coder with expansion factor μ > 0.
    ///
    /// # Errors
    ///
    /// Returns [`ExpandError::BadMu`] unless `0 < mu` and finite.
    pub fn new(mu: f64) -> Result<Self, ExpandError> {
        if !(mu.is_finite() && mu > 0.0) {
            return Err(ExpandError::BadMu);
        }
        Ok(ExpansionCode { mu })
    }

    /// The expansion factor μ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The erasure fraction each chunk tolerates, `μ/(1+μ)` (up to byte
    /// rounding in its favour).
    pub fn tolerable_fraction(&self) -> f64 {
        self.mu / (1.0 + self.mu)
    }

    /// Encoded length in bits for a message of `msg_bits` bits, i.e.
    /// `≈ (1+μ)·msg_bits` rounded up to whole RS chunks.
    ///
    /// # Errors
    ///
    /// Returns [`ExpandError::EmptyMessage`] when `msg_bits == 0`.
    pub fn layout(&self, msg_bits: usize) -> Result<Layout, ExpandError> {
        if msg_bits == 0 {
            return Err(ExpandError::EmptyMessage);
        }
        let total_k = msg_bits.div_ceil(8);
        // Pick the largest k per chunk such that n = ceil((1+mu)k) <= 255.
        let k_max = ((255.0 / (1.0 + self.mu)).floor() as usize).max(1);
        let chunks = total_k.div_ceil(k_max);
        let k = total_k.div_ceil(chunks);
        let n = (((1.0 + self.mu) * k as f64).ceil() as usize)
            .min(255)
            .max(k + 1);
        Ok(Layout { chunks, k, n })
    }

    /// Encodes a bit message into its jam-tolerant coded bit stream.
    ///
    /// # Errors
    ///
    /// Returns [`ExpandError::EmptyMessage`] for an empty message.
    pub fn encode_bits(&self, msg: &[bool]) -> Result<Vec<bool>, ExpandError> {
        let layout = self.layout(msg.len())?;
        let mut data = bits_to_bytes(msg);
        data.resize(layout.chunks * layout.k, 0);
        let rs = RsCode::new(layout.n, layout.k).expect("layout dimensions are valid");
        let mut symbols = Vec::with_capacity(layout.chunks * layout.n);
        for chunk in data.chunks(layout.k) {
            symbols.extend(rs.encode(chunk).expect("chunk length matches k"));
        }
        let symbols = if layout.chunks > 1 {
            BlockInterleaver::new(layout.chunks, layout.n)
                .expect("nonzero dims")
                .interleave(&symbols)
                .expect("length is chunks*n")
        } else {
            symbols
        };
        Ok(bytes_to_bits(&symbols))
    }

    /// Decodes a coded bit stream given a per-bit erasure map, returning the
    /// original `msg_bits`-bit message.
    ///
    /// A coded byte counts as erased if *any* of its 8 bits is flagged.
    /// Non-flagged corrupted bits are handled as RS errors (each chunk
    /// corrects ν errors + e erasures while `2ν + e ≤ n − k`).
    ///
    /// # Errors
    ///
    /// * [`ExpandError::LengthMismatch`] if `coded`/`erased` lengths don't
    ///   match the layout for `msg_bits`;
    /// * [`ExpandError::Unrecoverable`] when any chunk fails to decode.
    pub fn decode_bits(
        &self,
        coded: &[bool],
        erased: &[bool],
        msg_bits: usize,
    ) -> Result<Vec<bool>, ExpandError> {
        let layout = self.layout(msg_bits)?;
        let expected = layout.coded_bits();
        if coded.len() != expected || erased.len() != expected {
            return Err(ExpandError::LengthMismatch {
                expected,
                got: if coded.len() != expected {
                    coded.len()
                } else {
                    erased.len()
                },
            });
        }
        let symbols = bits_to_bytes(coded);
        let symbol_erased: Vec<bool> = erased.chunks(8).map(|c| c.iter().any(|&b| b)).collect();
        let (symbols, symbol_erased) = if layout.chunks > 1 {
            let il = BlockInterleaver::new(layout.chunks, layout.n).expect("nonzero dims");
            (
                il.deinterleave(&symbols).expect("geometry checked"),
                il.deinterleave(&symbol_erased).expect("geometry checked"),
            )
        } else {
            (symbols, symbol_erased)
        };
        let rs = RsCode::new(layout.n, layout.k).expect("layout dimensions are valid");
        let mut data = Vec::with_capacity(layout.chunks * layout.k);
        for ci in 0..layout.chunks {
            let mut chunk = symbols[ci * layout.n..(ci + 1) * layout.n].to_vec();
            let erasures: Vec<usize> = (0..layout.n)
                .filter(|&i| symbol_erased[ci * layout.n + i])
                .collect();
            if erasures.len() > layout.n - layout.k {
                return Err(ExpandError::Unrecoverable);
            }
            rs.decode(&mut chunk, &erasures)?;
            data.extend_from_slice(&chunk[..layout.k]);
        }
        let mut bits = bytes_to_bits(&data);
        bits.truncate(msg_bits);
        Ok(bits)
    }
}

/// Packs bits (MSB-first within each byte) into bytes, zero-padding the
/// final partial byte.
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 0x80 >> (i % 8);
        }
    }
    out
}

/// Unpacks bytes into bits, MSB-first.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    let mut out = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in 0..8 {
            out.push(b & (0x80 >> i) != 0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn msg(len: usize, seed: u64) -> Vec<bool> {
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| r.gen()).collect()
    }

    #[test]
    fn bit_byte_round_trip() {
        let bits = msg(37, 1);
        let bytes = bits_to_bytes(&bits);
        let mut back = bytes_to_bits(&bytes);
        back.truncate(37);
        assert_eq!(back, bits);
        assert_eq!(bits_to_bytes(&[true]), vec![0x80]);
        assert!(bytes_to_bits(&[0x80])[0]);
    }

    #[test]
    fn clean_round_trip_various_sizes() {
        let code = ExpansionCode::new(1.0).unwrap();
        for len in [1, 7, 8, 21, 160, 500, 1072, 4096] {
            let m = msg(len, len as u64);
            let coded = code.encode_bits(&m).unwrap();
            let erased = vec![false; coded.len()];
            assert_eq!(
                code.decode_bits(&coded, &erased, len).unwrap(),
                m,
                "len {len}"
            );
        }
    }

    #[test]
    fn layout_expansion_near_one_plus_mu() {
        for mu in [0.5, 1.0, 2.0] {
            let code = ExpansionCode::new(mu).unwrap();
            for bits in [21, 160, 1072] {
                let l = code.layout(bits).unwrap();
                let ratio = l.coded_bits() as f64 / bits as f64;
                assert!(
                    ratio >= 1.0 + mu - 0.01 && ratio <= (1.0 + mu) * 1.6,
                    "mu={mu}, bits={bits}, ratio={ratio}"
                );
            }
        }
    }

    #[test]
    fn survives_contiguous_jam_of_tolerable_fraction() {
        // A reactive jammer corrupts a contiguous suffix. At mu = 1 the code
        // must survive erasure of up to half the coded bits (minus a couple
        // of boundary symbols).
        let code = ExpansionCode::new(1.0).unwrap();
        for len in [21, 160, 1072] {
            let m = msg(len, 99 + len as u64);
            let mut coded = code.encode_bits(&m).unwrap();
            let total = coded.len();
            // Erase the last 45% (safely under mu/(1+mu) = 50% incl. byte
            // boundary slop).
            let burst = total * 45 / 100;
            let mut erased = vec![false; total];
            for i in (total - burst)..total {
                coded[i] = !coded[i];
                erased[i] = true;
            }
            let back = code.decode_bits(&coded, &erased, len).unwrap();
            assert_eq!(back, m, "len {len}");
        }
    }

    #[test]
    fn fails_beyond_tolerable_fraction() {
        let code = ExpansionCode::new(1.0).unwrap();
        let m = msg(160, 5);
        let mut coded = code.encode_bits(&m).unwrap();
        let total = coded.len();
        let mut erased = vec![false; total];
        // Erase 60% > 50%.
        for i in (total * 2 / 5)..total {
            coded[i] = !coded[i];
            erased[i] = true;
        }
        assert_eq!(
            code.decode_bits(&coded, &erased, 160),
            Err(ExpandError::Unrecoverable)
        );
    }

    #[test]
    fn corrects_unflagged_bit_errors_within_half_capacity() {
        let code = ExpansionCode::new(1.0).unwrap();
        let m = msg(160, 6);
        let coded = code.encode_bits(&m).unwrap();
        let layout = code.layout(160).unwrap();
        // Flip bits inside a few whole symbols (< (n-k)/2 per chunk).
        let budget = (layout.n - layout.k) / 2;
        let mut corrupted = coded.clone();
        for s in 0..budget.min(3) {
            let bit = s * 8 * (layout.chunks.max(1)) + 3;
            corrupted[bit] = !corrupted[bit];
        }
        let erased = vec![false; coded.len()];
        assert_eq!(code.decode_bits(&corrupted, &erased, 160).unwrap(), m);
    }

    #[test]
    fn random_scattered_erasures_within_budget() {
        let code = ExpansionCode::new(1.0).unwrap();
        let mut r = rand::rngs::StdRng::seed_from_u64(8);
        for trial in 0..20 {
            let len = 1072; // M-NDP-request sized
            let m = msg(len, 1000 + trial);
            let mut coded = code.encode_bits(&m).unwrap();
            let total = coded.len();
            let mut erased = vec![false; total];
            // Erase random 40% of bits.
            for i in 0..total {
                if r.gen_bool(0.40) {
                    erased[i] = true;
                    coded[i] = r.gen();
                }
            }
            match code.decode_bits(&coded, &erased, len) {
                Ok(back) => assert_eq!(back, m),
                Err(ExpandError::Unrecoverable) => {
                    // Random byte-aligned clustering can exceed a chunk's
                    // budget at 40%+; tolerate rare failures but not often.
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
    }

    #[test]
    fn parameter_validation() {
        assert_eq!(ExpansionCode::new(0.0).unwrap_err(), ExpandError::BadMu);
        assert_eq!(ExpansionCode::new(-1.0).unwrap_err(), ExpandError::BadMu);
        assert_eq!(
            ExpansionCode::new(f64::INFINITY).unwrap_err(),
            ExpandError::BadMu
        );
        let code = ExpansionCode::new(1.0).unwrap();
        assert_eq!(code.layout(0).unwrap_err(), ExpandError::EmptyMessage);
        assert!((code.tolerable_fraction() - 0.5).abs() < 1e-12);
        let coded = code.encode_bits(&[true; 21]).unwrap();
        assert!(matches!(
            code.decode_bits(&coded[1..], &vec![false; coded.len() - 1], 21),
            Err(ExpandError::LengthMismatch { .. })
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn round_trip_with_burst_under_budget(
            len in 1usize..600,
            mu_tenths in 5u32..30,
            start_frac in 0.0f64..1.0,
        ) {
            let mu = f64::from(mu_tenths) / 10.0;
            let code = ExpansionCode::new(mu).unwrap();
            let layout = code.layout(len).unwrap();
            let m: Vec<bool> = (0..len).map(|i| i % 5 < 2).collect();
            let mut coded = code.encode_bits(&m).unwrap();
            let total = coded.len();
            // Guaranteed-recoverable burst, accounting for byte
            // granularity: a burst of B consecutive coded bytes touches at
            // most B+1 distinct bytes, and the interleaver spreads B+1
            // consecutive bytes over the chunks so each sees at most
            // ceil((B+1)/chunks) <= n-k erasures when
            // B = (n-k-1)*chunks.
            let burst_bytes = (layout.n - layout.k).saturating_sub(1) * layout.chunks;
            let burst = burst_bytes * 8;
            prop_assume!(burst > 0);
            let start = ((total - burst) as f64 * start_frac) as usize;
            let mut erased = vec![false; total];
            for i in start..start + burst {
                coded[i] = !coded[i];
                erased[i] = true;
            }
            let back = code.decode_bits(&coded, &erased, len).unwrap();
            prop_assert_eq!(back, m);
        }
    }
}
