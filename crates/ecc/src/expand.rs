//! The paper's (1+μ)-expansion message coding.
//!
//! Section V-B: a D-NDP message of `L = l_t + l_id` bits is ECC-encoded into
//! `l_h = (1+μ)·L` bits such that the result tolerates up to a fraction
//! `μ/(1+μ)` of bit errors *or losses* — so a jammer must hit at least
//! `μ·L` bits with the correct spread code to destroy it.
//!
//! [`ExpansionCode`] realises that contract with Reed–Solomon at byte
//! granularity: a message of `k` data bytes becomes `n = ⌈(1+μ)k⌉` coded
//! bytes per chunk, correcting `n − k` byte erasures — exactly the
//! `μ/(1+μ)` fraction. Long messages (M-NDP requests carry neighbour lists
//! and signatures) are chunked to fit RS(255, ·) and block-interleaved so a
//! contiguous jamming burst spreads evenly across chunks.
//!
//! Jammed chips manifest as *erasures* rather than errors in a DSSS
//! receiver: the correlator sees |correlation| below the threshold τ and
//! knows the bit is unreliable. Decoding therefore takes a per-bit erasure
//! map.
//!
//! # Kernel layout
//!
//! The per-frame path is word-oriented and allocation-free once warm:
//! bit↔byte conversion packs eight bits branchlessly per byte and emits
//! whole `u64` words ([`pack_bits_into`]/[`append_bits_from_bytes`]), the
//! per-bit erasure map collapses into a byte-granularity `u64` bitmask, and
//! chunks are RS-decoded *in place* inside a staging buffer instead of
//! being copied out per chunk. [`ExpansionScratch`] owns every buffer plus
//! the [`RsCode`] (cached per `(n, k)` shape, `ecc.scratch_reused` counts
//! the hits) and the [`RsScratch`], so steady-state Monte-Carlo frames
//! touch the allocator zero times — see
//! [`ExpansionCode::encode_bits_into`] / [`ExpansionCode::decode_bits_into`].
//! The original allocating pipeline is preserved in [`reference`] as the
//! equivalence oracle.

use crate::interleave::BlockInterleaver;
use crate::rs::{RsCode, RsError, RsScratch};
use jrsnd_sim::metric_counter;

/// Errors from the expansion codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpandError {
    /// μ must be positive and finite.
    BadMu,
    /// The message is empty.
    EmptyMessage,
    /// Coded input length does not match the expected geometry.
    LengthMismatch {
        /// Expected number of coded bits.
        expected: usize,
        /// Got this many.
        got: usize,
    },
    /// Too many erasures/errors to recover the message.
    Unrecoverable,
}

impl std::fmt::Display for ExpandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExpandError::BadMu => write!(f, "mu must be positive and finite"),
            ExpandError::EmptyMessage => write!(f, "message must be non-empty"),
            ExpandError::LengthMismatch { expected, got } => {
                write!(f, "expected {expected} coded bits, got {got}")
            }
            ExpandError::Unrecoverable => write!(f, "too many erasures or errors to recover"),
        }
    }
}

impl std::error::Error for ExpandError {}

impl From<RsError> for ExpandError {
    fn from(_: RsError) -> Self {
        ExpandError::Unrecoverable
    }
}

/// Geometry of one encoded message: chunk count and per-chunk RS shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Number of RS chunks.
    pub chunks: usize,
    /// Data bytes per chunk.
    pub k: usize,
    /// Coded bytes per chunk.
    pub n: usize,
}

impl Layout {
    /// Total coded bits.
    pub fn coded_bits(&self) -> usize {
        self.chunks * self.n * 8
    }
}

/// Reusable working memory for the expansion codec: staging buffers, the
/// byte-granularity erasure bitmask, the per-chunk erasure position list,
/// the [`RsScratch`], and a cached [`RsCode`] keyed by the `(n, k)` shape.
///
/// Construct once per transceiver and thread through
/// [`ExpansionCode::encode_bits_into`] / [`ExpansionCode::decode_bits_into`]:
/// after the first frame of a given shape, further frames perform **zero
/// heap allocations** (asserted by `tests/ecc_alloc.rs`). Reuse never
/// affects results — every buffer is fully overwritten per call.
#[derive(Debug, Default)]
pub struct ExpansionScratch {
    /// Packed message/coded bytes; doubles as the interleave output.
    packed: Vec<u8>,
    /// Chunk-major symbol staging; chunks are decoded in place here.
    staging: Vec<u8>,
    /// Byte-granularity erasure bitmask over the interleaved coded bytes.
    era_words: Vec<u64>,
    /// Erasure positions within the current chunk.
    era_pos: Vec<usize>,
    /// The RS code for the last-seen `(n, k)`, rebuilt only on shape change.
    rs_cache: Option<(usize, usize, RsCode)>,
    /// Reed–Solomon decoder working memory.
    rs_scratch: RsScratch,
}

impl ExpansionScratch {
    /// An empty scratch; buffers grow to steady-state size on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The cached-RS-code lookup, as a free function over the cache field so
/// callers can keep disjoint borrows of the other scratch fields.
fn cached_code(cache: &mut Option<(usize, usize, RsCode)>, n: usize, k: usize) -> &RsCode {
    if matches!(cache, Some((cn, ck, _)) if *cn == n && *ck == k) {
        metric_counter!("ecc.scratch_reused").inc();
    } else {
        *cache = Some((
            n,
            k,
            RsCode::new(n, k).expect("layout dimensions are valid"),
        ));
    }
    &cache.as_ref().expect("cache populated").2
}

/// The μ-expansion coder: rate `1/(1+μ)`, tolerating a `μ/(1+μ)` fraction
/// of byte erasures per chunk.
///
/// # Examples
///
/// ```
/// use jrsnd_ecc::expand::ExpansionCode;
///
/// let code = ExpansionCode::new(1.0).unwrap(); // the paper's default mu = 1
/// let msg: Vec<bool> = (0..21).map(|i| i % 3 == 0).collect(); // l_t + l_id bits
/// let coded = code.encode_bits(&msg).unwrap();
/// // Jam (erase) the entire second half: still decodable at mu = 1.
/// let mut erased = vec![false; coded.len()];
/// for e in erased.iter_mut().skip(coded.len() / 2) { *e = true; }
/// let back = code.decode_bits(&coded, &erased, msg.len()).unwrap();
/// assert_eq!(back, msg);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpansionCode {
    mu: f64,
}

impl ExpansionCode {
    /// Creates a coder with expansion factor μ > 0.
    ///
    /// # Errors
    ///
    /// Returns [`ExpandError::BadMu`] unless `0 < mu` and finite.
    pub fn new(mu: f64) -> Result<Self, ExpandError> {
        if !(mu.is_finite() && mu > 0.0) {
            return Err(ExpandError::BadMu);
        }
        Ok(ExpansionCode { mu })
    }

    /// The expansion factor μ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The erasure fraction each chunk tolerates, `μ/(1+μ)` (up to byte
    /// rounding in its favour).
    pub fn tolerable_fraction(&self) -> f64 {
        self.mu / (1.0 + self.mu)
    }

    /// Encoded length in bits for a message of `msg_bits` bits, i.e.
    /// `≈ (1+μ)·msg_bits` rounded up to whole RS chunks.
    ///
    /// # Errors
    ///
    /// Returns [`ExpandError::EmptyMessage`] when `msg_bits == 0`.
    pub fn layout(&self, msg_bits: usize) -> Result<Layout, ExpandError> {
        if msg_bits == 0 {
            return Err(ExpandError::EmptyMessage);
        }
        let total_k = msg_bits.div_ceil(8);
        // Pick the largest k per chunk such that n = ceil((1+mu)k) <= 255.
        let k_max = ((255.0 / (1.0 + self.mu)).floor() as usize).max(1);
        let chunks = total_k.div_ceil(k_max);
        let k = total_k.div_ceil(chunks);
        let n = (((1.0 + self.mu) * k as f64).ceil() as usize)
            .min(255)
            .max(k + 1);
        Ok(Layout { chunks, k, n })
    }

    /// Encodes a bit message into its jam-tolerant coded bit stream.
    ///
    /// Convenience wrapper over [`ExpansionCode::encode_bits_into`] with
    /// throwaway scratch; per-frame callers should hold an
    /// [`ExpansionScratch`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`ExpandError::EmptyMessage`] for an empty message.
    pub fn encode_bits(&self, msg: &[bool]) -> Result<Vec<bool>, ExpandError> {
        let mut out = Vec::new();
        self.encode_bits_into(msg, &mut ExpansionScratch::new(), &mut out)?;
        Ok(out)
    }

    /// [`ExpansionCode::encode_bits`] into caller-owned buffers: `out` is
    /// cleared and filled with the coded bits; all intermediates live in
    /// `scratch`. Zero allocations once the buffers reached steady-state
    /// capacity for the message shape.
    ///
    /// # Errors
    ///
    /// Returns [`ExpandError::EmptyMessage`] for an empty message.
    pub fn encode_bits_into(
        &self,
        msg: &[bool],
        scratch: &mut ExpansionScratch,
        out: &mut Vec<bool>,
    ) -> Result<(), ExpandError> {
        let layout = self.layout(msg.len())?;
        let ExpansionScratch {
            packed,
            staging,
            rs_cache,
            ..
        } = scratch;
        pack_bits_into(msg, packed);
        packed.resize(layout.chunks * layout.k, 0);
        let rs = cached_code(rs_cache, layout.n, layout.k);
        staging.clear();
        staging.resize(layout.chunks * layout.n, 0);
        for ci in 0..layout.chunks {
            rs.encode_into(
                &packed[ci * layout.k..(ci + 1) * layout.k],
                &mut staging[ci * layout.n..(ci + 1) * layout.n],
            )
            .expect("chunk length matches k");
        }
        out.clear();
        if layout.chunks > 1 {
            let il = BlockInterleaver::new(layout.chunks, layout.n).expect("nonzero dims");
            packed.resize(layout.chunks * layout.n, 0);
            il.interleave_into(staging, packed)
                .expect("length is chunks*n");
            append_bits_from_bytes(packed, out);
        } else {
            append_bits_from_bytes(staging, out);
        }
        Ok(())
    }

    /// Decodes a coded bit stream given a per-bit erasure map, returning the
    /// original `msg_bits`-bit message.
    ///
    /// A coded byte counts as erased if *any* of its 8 bits is flagged.
    /// Non-flagged corrupted bits are handled as RS errors (each chunk
    /// corrects ν errors + e erasures while `2ν + e ≤ n − k`).
    ///
    /// Convenience wrapper over [`ExpansionCode::decode_bits_into`] with
    /// throwaway scratch.
    ///
    /// # Errors
    ///
    /// * [`ExpandError::LengthMismatch`] if `coded`/`erased` lengths don't
    ///   match the layout for `msg_bits`;
    /// * [`ExpandError::Unrecoverable`] when any chunk fails to decode.
    pub fn decode_bits(
        &self,
        coded: &[bool],
        erased: &[bool],
        msg_bits: usize,
    ) -> Result<Vec<bool>, ExpandError> {
        let mut out = Vec::new();
        self.decode_bits_into(
            coded,
            erased,
            msg_bits,
            &mut ExpansionScratch::new(),
            &mut out,
        )?;
        Ok(out)
    }

    /// [`ExpansionCode::decode_bits`] into caller-owned buffers — the
    /// allocation-free kernel. The erasure map is collapsed to a
    /// byte-granularity `u64` bitmask, symbols are deinterleaved once into
    /// the staging buffer, and each chunk is decoded **in place** there
    /// (via [`RsCode::decode_data_in_place`]) with its erasure positions
    /// read back through the interleaver permutation — no per-chunk copies.
    ///
    /// # Errors
    ///
    /// As [`ExpansionCode::decode_bits`].
    pub fn decode_bits_into(
        &self,
        coded: &[bool],
        erased: &[bool],
        msg_bits: usize,
        scratch: &mut ExpansionScratch,
        out: &mut Vec<bool>,
    ) -> Result<(), ExpandError> {
        let layout = self.layout(msg_bits)?;
        let expected = layout.coded_bits();
        if coded.len() != expected || erased.len() != expected {
            return Err(ExpandError::LengthMismatch {
                expected,
                got: if coded.len() != expected {
                    coded.len()
                } else {
                    erased.len()
                },
            });
        }
        let ExpansionScratch {
            packed,
            staging,
            era_words,
            era_pos,
            rs_cache,
            rs_scratch,
        } = scratch;
        pack_bits_into(coded, packed);
        let total = layout.chunks * layout.n;
        // Byte j of the interleaved stream is erased iff any of its 8 bits
        // is flagged; one bit per byte, packed into u64 words.
        era_words.clear();
        era_words.resize(total.div_ceil(64), 0);
        for (j, group) in erased.chunks(8).enumerate() {
            if group.iter().any(|&b| b) {
                era_words[j >> 6] |= 1 << (j & 63);
            }
        }
        let il = BlockInterleaver::new(layout.chunks, layout.n).expect("nonzero dims");
        if layout.chunks > 1 {
            staging.clear();
            staging.resize(total, 0);
            il.deinterleave_into(packed, staging)
                .expect("geometry checked");
        } else {
            std::mem::swap(packed, staging);
        }
        let rs = cached_code(rs_cache, layout.n, layout.k);
        out.clear();
        for ci in 0..layout.chunks {
            // Erasure positions within this chunk: deinterleaved position i
            // came from interleaved byte permute(ci*n + i).
            era_pos.clear();
            for i in 0..layout.n {
                let j = if layout.chunks > 1 {
                    il.permute(ci * layout.n + i)
                } else {
                    ci * layout.n + i
                };
                if era_words[j >> 6] >> (j & 63) & 1 == 1 {
                    era_pos.push(i);
                }
            }
            if era_pos.len() > layout.n - layout.k {
                return Err(ExpandError::Unrecoverable);
            }
            let chunk = &mut staging[ci * layout.n..(ci + 1) * layout.n];
            let data = rs.decode_data_in_place(chunk, era_pos, rs_scratch)?;
            append_bits_from_bytes(data, out);
        }
        out.truncate(msg_bits);
        Ok(())
    }
}

/// Packs bits (MSB-first within each byte) into `out` (cleared first),
/// zero-padding the final partial byte. The hot loop assembles eight bits
/// branchlessly per byte and writes eight bytes per `u64` word.
pub fn pack_bits_into(bits: &[bool], out: &mut Vec<u8>) {
    #[inline]
    fn pack8(c: &[bool]) -> u8 {
        (c[0] as u8) << 7
            | (c[1] as u8) << 6
            | (c[2] as u8) << 5
            | (c[3] as u8) << 4
            | (c[4] as u8) << 3
            | (c[5] as u8) << 2
            | (c[6] as u8) << 1
            | (c[7] as u8)
    }
    out.clear();
    out.reserve(bits.len().div_ceil(8));
    let mut words = bits.chunks_exact(64);
    for w in words.by_ref() {
        let mut acc = 0u64;
        for (g, byte_bits) in w.chunks_exact(8).enumerate() {
            acc |= u64::from(pack8(byte_bits)) << (56 - 8 * g);
        }
        out.extend_from_slice(&acc.to_be_bytes());
    }
    let mut bytes = words.remainder().chunks_exact(8);
    for c in bytes.by_ref() {
        out.push(pack8(c));
    }
    let rem = bytes.remainder();
    if !rem.is_empty() {
        let mut b = 0u8;
        for (i, &v) in rem.iter().enumerate() {
            b |= (v as u8) << (7 - i);
        }
        out.push(b);
    }
}

/// Appends each byte of `bytes` as 8 bits (MSB-first) to `out`.
pub fn append_bits_from_bytes(bytes: &[u8], out: &mut Vec<bool>) {
    out.reserve(bytes.len() * 8);
    for &b in bytes {
        out.push(b & 0x80 != 0);
        out.push(b & 0x40 != 0);
        out.push(b & 0x20 != 0);
        out.push(b & 0x10 != 0);
        out.push(b & 0x08 != 0);
        out.push(b & 0x04 != 0);
        out.push(b & 0x02 != 0);
        out.push(b & 0x01 != 0);
    }
}

/// Packs bits (MSB-first within each byte) into bytes, zero-padding the
/// final partial byte.
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    let mut out = Vec::new();
    pack_bits_into(bits, &mut out);
    out
}

/// Unpacks bytes into bits, MSB-first.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    let mut out = Vec::with_capacity(bytes.len() * 8);
    append_bits_from_bytes(bytes, &mut out);
    out
}

/// The original allocating expansion pipeline over the [`crate::rs::reference`]
/// Reed–Solomon oracle, kept for equivalence testing: the scratch-backed
/// kernels must produce byte-identical results (including error cases).
pub mod reference {
    use super::{ExpandError, ExpansionCode};
    use crate::interleave::BlockInterleaver;
    use crate::rs::{reference as rs_reference, RsCode};

    /// The original [`ExpansionCode::encode_bits`]: fresh vectors and
    /// polynomial-division RS encoding per chunk.
    ///
    /// # Errors
    ///
    /// As [`ExpansionCode::encode_bits`].
    pub fn encode_bits(code: &ExpansionCode, msg: &[bool]) -> Result<Vec<bool>, ExpandError> {
        let layout = code.layout(msg.len())?;
        let mut data = super::bits_to_bytes(msg);
        data.resize(layout.chunks * layout.k, 0);
        let rs = RsCode::new(layout.n, layout.k).expect("layout dimensions are valid");
        let mut symbols = Vec::with_capacity(layout.chunks * layout.n);
        for chunk in data.chunks(layout.k) {
            symbols.extend(rs_reference::encode(&rs, chunk).expect("chunk length matches k"));
        }
        let symbols = if layout.chunks > 1 {
            BlockInterleaver::new(layout.chunks, layout.n)
                .expect("nonzero dims")
                .interleave(&symbols)
                .expect("length is chunks*n")
        } else {
            symbols
        };
        Ok(super::bytes_to_bits(&symbols))
    }

    /// The original [`ExpansionCode::decode_bits`]: `Vec<bool>` erasure
    /// maps, allocating deinterleave, per-chunk copies, polynomial RS
    /// decoding.
    ///
    /// # Errors
    ///
    /// As [`ExpansionCode::decode_bits`].
    pub fn decode_bits(
        code: &ExpansionCode,
        coded: &[bool],
        erased: &[bool],
        msg_bits: usize,
    ) -> Result<Vec<bool>, ExpandError> {
        let layout = code.layout(msg_bits)?;
        let expected = layout.coded_bits();
        if coded.len() != expected || erased.len() != expected {
            return Err(ExpandError::LengthMismatch {
                expected,
                got: if coded.len() != expected {
                    coded.len()
                } else {
                    erased.len()
                },
            });
        }
        let symbols = super::bits_to_bytes(coded);
        let symbol_erased: Vec<bool> = erased.chunks(8).map(|c| c.iter().any(|&b| b)).collect();
        let (symbols, symbol_erased) = if layout.chunks > 1 {
            let il = BlockInterleaver::new(layout.chunks, layout.n).expect("nonzero dims");
            (
                il.deinterleave(&symbols).expect("geometry checked"),
                il.deinterleave(&symbol_erased).expect("geometry checked"),
            )
        } else {
            (symbols, symbol_erased)
        };
        let rs = RsCode::new(layout.n, layout.k).expect("layout dimensions are valid");
        let mut data = Vec::with_capacity(layout.chunks * layout.k);
        for ci in 0..layout.chunks {
            let mut chunk = symbols[ci * layout.n..(ci + 1) * layout.n].to_vec();
            let erasures: Vec<usize> = (0..layout.n)
                .filter(|&i| symbol_erased[ci * layout.n + i])
                .collect();
            if erasures.len() > layout.n - layout.k {
                return Err(ExpandError::Unrecoverable);
            }
            rs_reference::decode(&rs, &mut chunk, &erasures)?;
            data.extend_from_slice(&chunk[..layout.k]);
        }
        let mut bits = super::bytes_to_bits(&data);
        bits.truncate(msg_bits);
        Ok(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn msg(len: usize, seed: u64) -> Vec<bool> {
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| r.gen()).collect()
    }

    #[test]
    fn bit_byte_round_trip() {
        let bits = msg(37, 1);
        let bytes = bits_to_bytes(&bits);
        let mut back = bytes_to_bits(&bytes);
        back.truncate(37);
        assert_eq!(back, bits);
        assert_eq!(bits_to_bytes(&[true]), vec![0x80]);
        assert!(bytes_to_bits(&[0x80])[0]);
    }

    #[test]
    fn packed_word_conversion_matches_naive() {
        // Cover the 64-bit word path, the 8-bit path, and the ragged tail.
        for len in [0, 1, 7, 8, 9, 63, 64, 65, 200, 1024, 1027] {
            let bits = msg(len, 40 + len as u64);
            let mut naive = vec![0u8; len.div_ceil(8)];
            for (i, &b) in bits.iter().enumerate() {
                if b {
                    naive[i / 8] |= 0x80 >> (i % 8);
                }
            }
            assert_eq!(bits_to_bytes(&bits), naive, "len {len}");
        }
    }

    #[test]
    fn clean_round_trip_various_sizes() {
        let code = ExpansionCode::new(1.0).unwrap();
        for len in [1, 7, 8, 21, 160, 500, 1072, 4096] {
            let m = msg(len, len as u64);
            let coded = code.encode_bits(&m).unwrap();
            let erased = vec![false; coded.len()];
            assert_eq!(
                code.decode_bits(&coded, &erased, len).unwrap(),
                m,
                "len {len}"
            );
        }
    }

    #[test]
    fn fast_path_matches_reference_clean_and_jammed() {
        let mut r = rand::rngs::StdRng::seed_from_u64(77);
        let mut scratch = ExpansionScratch::new();
        let mut coded_buf = Vec::new();
        let mut out_buf = Vec::new();
        for trial in 0..40u64 {
            let len = r.gen_range(1usize..1500);
            let mu = [0.5, 1.0, 2.0][r.gen_range(0usize..3)];
            let code = ExpansionCode::new(mu).unwrap();
            let m = msg(len, 3000 + trial);
            code.encode_bits_into(&m, &mut scratch, &mut coded_buf)
                .unwrap();
            let reference = reference::encode_bits(&code, &m).unwrap();
            assert_eq!(coded_buf, reference, "trial {trial}: encode diverged");
            // Corrupt a random mix of flagged erasures and silent flips.
            let mut coded = coded_buf.clone();
            let total = coded.len();
            let mut erased = vec![false; total];
            for i in 0..total {
                if r.gen_bool(0.25) {
                    erased[i] = true;
                    coded[i] = r.gen();
                } else if r.gen_bool(0.02) {
                    coded[i] = !coded[i];
                }
            }
            let fast = code.decode_bits_into(&coded, &erased, len, &mut scratch, &mut out_buf);
            let slow = reference::decode_bits(&code, &coded, &erased, len);
            match (fast, slow) {
                (Ok(()), Ok(s)) => assert_eq!(out_buf, s, "trial {trial}: decode diverged"),
                (f, s) => assert_eq!(f.err(), s.err(), "trial {trial}: errors diverged"),
            }
        }
    }

    #[test]
    fn scratch_reuse_never_changes_output() {
        let code = ExpansionCode::new(1.0).unwrap();
        let mut scratch = ExpansionScratch::new();
        let mut out = Vec::new();
        for trial in 0..20u64 {
            let len = 21 + (trial as usize * 53) % 1200;
            let m = msg(len, 500 + trial);
            code.encode_bits_into(&m, &mut scratch, &mut out).unwrap();
            assert_eq!(out, code.encode_bits(&m).unwrap(), "trial {trial}");
            // A contiguous 40% burst, safely under the mu = 1 budget.
            let mut erased = vec![false; out.len()];
            let burst = out.len() * 2 / 5;
            for e in erased.iter_mut().take(burst) {
                *e = true;
            }
            let coded = out.clone();
            let mut decoded = Vec::new();
            code.decode_bits_into(&coded, &erased, len, &mut scratch, &mut decoded)
                .unwrap();
            assert_eq!(
                decoded,
                code.decode_bits(&coded, &erased, len).unwrap(),
                "trial {trial}"
            );
            assert_eq!(decoded, m, "trial {trial}");
        }
    }

    #[test]
    fn layout_expansion_near_one_plus_mu() {
        for mu in [0.5, 1.0, 2.0] {
            let code = ExpansionCode::new(mu).unwrap();
            for bits in [21, 160, 1072] {
                let l = code.layout(bits).unwrap();
                let ratio = l.coded_bits() as f64 / bits as f64;
                assert!(
                    ratio >= 1.0 + mu - 0.01 && ratio <= (1.0 + mu) * 1.6,
                    "mu={mu}, bits={bits}, ratio={ratio}"
                );
            }
        }
    }

    #[test]
    fn survives_contiguous_jam_of_tolerable_fraction() {
        // A reactive jammer corrupts a contiguous suffix. At mu = 1 the code
        // must survive erasure of up to half the coded bits (minus a couple
        // of boundary symbols).
        let code = ExpansionCode::new(1.0).unwrap();
        for len in [21, 160, 1072] {
            let m = msg(len, 99 + len as u64);
            let mut coded = code.encode_bits(&m).unwrap();
            let total = coded.len();
            // Erase the last 45% (safely under mu/(1+mu) = 50% incl. byte
            // boundary slop).
            let burst = total * 45 / 100;
            let mut erased = vec![false; total];
            for i in (total - burst)..total {
                coded[i] = !coded[i];
                erased[i] = true;
            }
            let back = code.decode_bits(&coded, &erased, len).unwrap();
            assert_eq!(back, m, "len {len}");
        }
    }

    #[test]
    fn fails_beyond_tolerable_fraction() {
        let code = ExpansionCode::new(1.0).unwrap();
        let m = msg(160, 5);
        let mut coded = code.encode_bits(&m).unwrap();
        let total = coded.len();
        let mut erased = vec![false; total];
        // Erase 60% > 50%.
        for i in (total * 2 / 5)..total {
            coded[i] = !coded[i];
            erased[i] = true;
        }
        assert_eq!(
            code.decode_bits(&coded, &erased, 160),
            Err(ExpandError::Unrecoverable)
        );
    }

    #[test]
    fn corrects_unflagged_bit_errors_within_half_capacity() {
        let code = ExpansionCode::new(1.0).unwrap();
        let m = msg(160, 6);
        let coded = code.encode_bits(&m).unwrap();
        let layout = code.layout(160).unwrap();
        // Flip bits inside a few whole symbols (< (n-k)/2 per chunk).
        let budget = (layout.n - layout.k) / 2;
        let mut corrupted = coded.clone();
        for s in 0..budget.min(3) {
            let bit = s * 8 * (layout.chunks.max(1)) + 3;
            corrupted[bit] = !corrupted[bit];
        }
        let erased = vec![false; coded.len()];
        assert_eq!(code.decode_bits(&corrupted, &erased, 160).unwrap(), m);
    }

    #[test]
    fn random_scattered_erasures_within_budget() {
        let code = ExpansionCode::new(1.0).unwrap();
        let mut r = rand::rngs::StdRng::seed_from_u64(8);
        for trial in 0..20 {
            let len = 1072; // M-NDP-request sized
            let m = msg(len, 1000 + trial);
            let mut coded = code.encode_bits(&m).unwrap();
            let total = coded.len();
            let mut erased = vec![false; total];
            // Erase random 40% of bits.
            for i in 0..total {
                if r.gen_bool(0.40) {
                    erased[i] = true;
                    coded[i] = r.gen();
                }
            }
            match code.decode_bits(&coded, &erased, len) {
                Ok(back) => assert_eq!(back, m),
                Err(ExpandError::Unrecoverable) => {
                    // Random byte-aligned clustering can exceed a chunk's
                    // budget at 40%+; tolerate rare failures but not often.
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
    }

    #[test]
    fn parameter_validation() {
        assert_eq!(ExpansionCode::new(0.0).unwrap_err(), ExpandError::BadMu);
        assert_eq!(ExpansionCode::new(-1.0).unwrap_err(), ExpandError::BadMu);
        assert_eq!(
            ExpansionCode::new(f64::INFINITY).unwrap_err(),
            ExpandError::BadMu
        );
        let code = ExpansionCode::new(1.0).unwrap();
        assert_eq!(code.layout(0).unwrap_err(), ExpandError::EmptyMessage);
        assert!((code.tolerable_fraction() - 0.5).abs() < 1e-12);
        let coded = code.encode_bits(&[true; 21]).unwrap();
        assert!(matches!(
            code.decode_bits(&coded[1..], &vec![false; coded.len() - 1], 21),
            Err(ExpandError::LengthMismatch { .. })
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn round_trip_with_burst_under_budget(
            len in 1usize..600,
            mu_tenths in 5u32..30,
            start_frac in 0.0f64..1.0,
        ) {
            let mu = f64::from(mu_tenths) / 10.0;
            let code = ExpansionCode::new(mu).unwrap();
            let layout = code.layout(len).unwrap();
            let m: Vec<bool> = (0..len).map(|i| i % 5 < 2).collect();
            let mut coded = code.encode_bits(&m).unwrap();
            let total = coded.len();
            // Guaranteed-recoverable burst, accounting for byte
            // granularity: a burst of B consecutive coded bytes touches at
            // most B+1 distinct bytes, and the interleaver spreads B+1
            // consecutive bytes over the chunks so each sees at most
            // ceil((B+1)/chunks) <= n-k erasures when
            // B = (n-k-1)*chunks.
            let burst_bytes = (layout.n - layout.k).saturating_sub(1) * layout.chunks;
            let burst = burst_bytes * 8;
            prop_assume!(burst > 0);
            let start = ((total - burst) as f64 * start_frac) as usize;
            let mut erased = vec![false; total];
            for i in start..start + burst {
                coded[i] = !coded[i];
                erased[i] = true;
            }
            let back = code.decode_bits(&coded, &erased, len).unwrap();
            prop_assert_eq!(back, m);
        }
    }
}
