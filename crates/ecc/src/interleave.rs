//! Block interleaving.
//!
//! A reactive jammer that identifies the spread code mid-message corrupts a
//! *contiguous suffix* of the transmission. Interleaving the ECC-coded
//! symbols spreads such a burst across many codewords so each one sees
//! roughly its share of erasures instead of one codeword absorbing the
//! whole burst.

/// A rows × cols block interleaver: symbols are written row-major and read
/// column-major.
///
/// # Examples
///
/// ```
/// use jrsnd_ecc::interleave::BlockInterleaver;
///
/// let il = BlockInterleaver::new(2, 3).unwrap();
/// let out = il.interleave(&[1, 2, 3, 4, 5, 6]).unwrap();
/// assert_eq!(out, vec![1, 4, 2, 5, 3, 6]);
/// let back = il.deinterleave(&out).unwrap();
/// assert_eq!(back, vec![1, 2, 3, 4, 5, 6]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInterleaver {
    rows: usize,
    cols: usize,
}

/// Errors from interleaving operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterleaveError {
    /// Dimensions were zero.
    ZeroDimension,
    /// The input length is not `rows * cols`.
    LengthMismatch {
        /// `rows * cols`.
        expected: usize,
        /// Length supplied.
        got: usize,
    },
}

impl std::fmt::Display for InterleaveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterleaveError::ZeroDimension => write!(f, "interleaver dimensions must be nonzero"),
            InterleaveError::LengthMismatch { expected, got } => {
                write!(f, "expected {expected} symbols, got {got}")
            }
        }
    }
}

impl std::error::Error for InterleaveError {}

impl BlockInterleaver {
    /// Creates an interleaver with the given block shape.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaveError::ZeroDimension`] if either dimension is 0.
    pub fn new(rows: usize, cols: usize) -> Result<Self, InterleaveError> {
        if rows == 0 || cols == 0 {
            return Err(InterleaveError::ZeroDimension);
        }
        Ok(BlockInterleaver { rows, cols })
    }

    /// Block size `rows * cols`.
    pub fn block_len(&self) -> usize {
        self.rows * self.cols
    }

    /// Permuted index: where input position `i` lands in the output.
    #[inline]
    pub fn permute(&self, i: usize) -> usize {
        let (r, c) = (i / self.cols, i % self.cols);
        c * self.rows + r
    }

    /// Inverse permutation.
    #[inline]
    pub fn unpermute(&self, j: usize) -> usize {
        let (c, r) = (j / self.rows, j % self.rows);
        r * self.cols + c
    }

    /// Interleaves one block.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaveError::LengthMismatch`] for a wrong-size input.
    pub fn interleave<T: Copy + Default>(&self, input: &[T]) -> Result<Vec<T>, InterleaveError> {
        self.check(input.len())?;
        let mut out = vec![T::default(); input.len()];
        for (i, &v) in input.iter().enumerate() {
            out[self.permute(i)] = v;
        }
        Ok(out)
    }

    /// Reverses [`BlockInterleaver::interleave`].
    ///
    /// # Errors
    ///
    /// Returns [`InterleaveError::LengthMismatch`] for a wrong-size input.
    pub fn deinterleave<T: Copy + Default>(&self, input: &[T]) -> Result<Vec<T>, InterleaveError> {
        self.check(input.len())?;
        let mut out = vec![T::default(); input.len()];
        for (j, &v) in input.iter().enumerate() {
            out[self.unpermute(j)] = v;
        }
        Ok(out)
    }

    /// [`BlockInterleaver::interleave`] into a caller-provided buffer of
    /// exactly `rows * cols` elements — the allocation-free variant used by
    /// the expansion codec's scratch-backed path.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaveError::LengthMismatch`] if either slice has the
    /// wrong length.
    pub fn interleave_into<T: Copy>(
        &self,
        input: &[T],
        out: &mut [T],
    ) -> Result<(), InterleaveError> {
        self.check(input.len())?;
        self.check(out.len())?;
        for (i, &v) in input.iter().enumerate() {
            out[self.permute(i)] = v;
        }
        Ok(())
    }

    /// [`BlockInterleaver::deinterleave`] into a caller-provided buffer of
    /// exactly `rows * cols` elements.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaveError::LengthMismatch`] if either slice has the
    /// wrong length.
    pub fn deinterleave_into<T: Copy>(
        &self,
        input: &[T],
        out: &mut [T],
    ) -> Result<(), InterleaveError> {
        self.check(input.len())?;
        self.check(out.len())?;
        for (j, &v) in input.iter().enumerate() {
            out[self.unpermute(j)] = v;
        }
        Ok(())
    }

    fn check(&self, len: usize) -> Result<(), InterleaveError> {
        if len != self.block_len() {
            return Err(InterleaveError::LengthMismatch {
                expected: self.block_len(),
                got: len,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_identity() {
        let il = BlockInterleaver::new(4, 7).unwrap();
        let data: Vec<u32> = (0..28).collect();
        let mixed = il.interleave(&data).unwrap();
        assert_ne!(mixed, data);
        assert_eq!(il.deinterleave(&mixed).unwrap(), data);
    }

    #[test]
    fn into_variants_match_allocating_ones() {
        let il = BlockInterleaver::new(3, 5).unwrap();
        let data: Vec<u8> = (10..25).collect();
        let mut buf = vec![0u8; 15];
        il.interleave_into(&data, &mut buf).unwrap();
        assert_eq!(buf, il.interleave(&data).unwrap());
        let mut back = vec![0u8; 15];
        il.deinterleave_into(&buf, &mut back).unwrap();
        assert_eq!(back, data);
        let mut wrong = vec![0u8; 14];
        assert!(matches!(
            il.interleave_into(&data, &mut wrong),
            Err(InterleaveError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn permute_unpermute_are_inverse() {
        let il = BlockInterleaver::new(5, 3).unwrap();
        for i in 0..15 {
            assert_eq!(il.unpermute(il.permute(i)), i);
            assert_eq!(il.permute(il.unpermute(i)), i);
        }
    }

    #[test]
    fn burst_spreads_across_rows() {
        // A burst of `rows` consecutive output symbols touches each input
        // row exactly once, i.e. at most ceil(burst/rows) symbols per
        // codeword when codewords are rows.
        let rows = 6;
        let cols = 10;
        let il = BlockInterleaver::new(rows, cols).unwrap();
        let burst_start = 17;
        let burst_len = rows;
        let mut hits_per_row = vec![0usize; rows];
        for j in burst_start..burst_start + burst_len {
            let i = il.unpermute(j);
            hits_per_row[i / cols] += 1;
        }
        assert!(hits_per_row.iter().all(|&h| h == 1), "{hits_per_row:?}");
    }

    #[test]
    fn degenerate_shapes_are_identity() {
        let data: Vec<u8> = (0..9).collect();
        for il in [
            BlockInterleaver::new(1, 9).unwrap(),
            BlockInterleaver::new(9, 1).unwrap(),
        ] {
            assert_eq!(il.interleave(&data).unwrap(), data);
        }
    }

    #[test]
    fn errors_on_bad_inputs() {
        assert_eq!(
            BlockInterleaver::new(0, 3),
            Err(InterleaveError::ZeroDimension)
        );
        let il = BlockInterleaver::new(2, 3).unwrap();
        assert!(matches!(
            il.interleave(&[0u8; 5]),
            Err(InterleaveError::LengthMismatch {
                expected: 6,
                got: 5
            })
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn round_trip(rows in 1usize..12, cols in 1usize..12, seed in 0u64..100) {
            use rand::{Rng, SeedableRng};
            let il = BlockInterleaver::new(rows, cols).unwrap();
            let mut r = rand::rngs::StdRng::seed_from_u64(seed);
            let data: Vec<u8> = (0..rows * cols).map(|_| r.gen()).collect();
            let mixed = il.interleave(&data).unwrap();
            prop_assert_eq!(il.deinterleave(&mixed).unwrap(), data);
        }

        #[test]
        fn permutation_is_bijection(rows in 1usize..16, cols in 1usize..16) {
            let il = BlockInterleaver::new(rows, cols).unwrap();
            let mut seen = vec![false; rows * cols];
            for i in 0..rows * cols {
                let j = il.permute(i);
                prop_assert!(!seen[j]);
                seen[j] = true;
            }
        }
    }
}
