//! Error-correcting-code substrate for the JR-SND reproduction.
//!
//! Every D-NDP/M-NDP message in the paper is "encoded with an
//! error-correcting code (ECC) such as \[15\]" — Reed & Solomon 1960 — so
//! that a message expanded by a factor `(1+μ)` survives a `μ/(1+μ)`
//! fraction of jammed bits. This crate builds that stack from scratch:
//!
//! * [`gf256`] — GF(2⁸) field arithmetic (tables over 0x11D);
//! * [`poly`] — polynomials over GF(2⁸);
//! * [`rs`] — a systematic Reed–Solomon codec with full errors-and-erasures
//!   decoding (syndromes, Berlekamp–Massey, Chien search, Forney);
//! * [`interleave`] — block interleaving so a reactive jammer's contiguous
//!   burst spreads across codewords;
//! * [`expand`] — the paper's `(1+μ)`-expansion framing
//!   ([`expand::ExpansionCode`]) used by the protocol layer.
//!
//! # Examples
//!
//! Encode the 21-bit D-NDP HELLO payload with the paper's μ = 1 and survive
//! a half-message jam:
//!
//! ```
//! use jrsnd_ecc::expand::ExpansionCode;
//!
//! let code = ExpansionCode::new(1.0)?;
//! let hello: Vec<bool> = (0..21).map(|i| i % 2 == 0).collect();
//! let coded = code.encode_bits(&hello)?;
//! let mut erased = vec![false; coded.len()];
//! for e in erased.iter_mut().take(coded.len() / 2) { *e = true; }
//! assert_eq!(code.decode_bits(&coded, &erased, hello.len())?, hello);
//! # Ok::<(), jrsnd_ecc::expand::ExpandError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expand;
pub mod gf256;
pub mod interleave;
pub mod poly;
pub mod rs;

pub use expand::{ExpandError, ExpansionCode, ExpansionScratch};
pub use rs::{RsCode, RsError, RsScratch};
