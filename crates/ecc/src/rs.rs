//! A systematic Reed–Solomon codec over GF(2⁸) with errors-and-erasures
//! decoding.
//!
//! This is the "\[15\] Reed & Solomon 1960" code the paper cites for encoding
//! every D-NDP message. The decoding pipeline is classical:
//! syndromes → Forney syndromes (folding in known erasures) →
//! Berlekamp–Massey → Chien search → Forney magnitudes.
//!
//! A code `RS(n, k)` with `2t = n − k` parity symbols corrects any pattern
//! of ν errors and e erasures with `2ν + e ≤ 2t`.
//!
//! # Kernel layout
//!
//! The hot paths are **allocation-free and table-driven**:
//!
//! * [`RsCode::encode_into`] is an LFSR: one 256-entry multiply table per
//!   generator coefficient (built once in [`RsCode::new`]) turns each data
//!   symbol into `2t` XORs and lookups — no polynomial division, no per-block
//!   allocation.
//! * [`RsCode::decode_with`] threads a reusable [`RsScratch`] (fixed-size
//!   coefficient arrays bounded by the field size) through the whole
//!   pipeline. The Chien search keeps one incrementally-multiplied register
//!   per locator coefficient instead of re-evaluating the polynomial at all
//!   `n` positions, and the post-correction syndrome recheck is computed
//!   from the *correction delta* (one term per corrected symbol per
//!   syndrome) instead of re-evaluating all `n` received symbols.
//!
//! The original polynomial-arithmetic implementation is preserved verbatim
//! in [`reference`] as the equivalence oracle; `tests/ecc_equivalence.rs`
//! proves the kernels byte-identical to it, success and failure cases alike.

use crate::gf256::{mul_table, raw_tables, Gf256};
use crate::poly::Poly;
use jrsnd_sim::metric_counter;
use std::fmt;

/// Errors returned by the Reed–Solomon codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsError {
    /// The corruption exceeded the code's correction capability.
    TooManyErrors,
    /// An erasure index was out of range or duplicated.
    BadErasure {
        /// The offending position.
        position: usize,
    },
    /// Input length does not match the code dimensions.
    LengthMismatch {
        /// Expected number of symbols.
        expected: usize,
        /// Number of symbols supplied.
        got: usize,
    },
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::TooManyErrors => write!(f, "corruption exceeds correction capability"),
            RsError::BadErasure { position } => {
                write!(f, "invalid or duplicate erasure position {position}")
            }
            RsError::LengthMismatch { expected, got } => {
                write!(f, "expected {expected} symbols, got {got}")
            }
        }
    }
}

impl std::error::Error for RsError {}

/// Coefficient arrays in the decoder are bounded by the field: `n ≤ 255`,
/// so every polynomial the pipeline touches has at most 256 coefficients.
const MAX_COEFFS: usize = 256;

/// Reusable decoder working memory: every polynomial and bitmap the
/// errors-and-erasures pipeline needs, as fixed-size arrays bounded by the
/// field size (≈ 2.3 KiB, no heap).
///
/// One scratch may be shared across any number of [`RsCode`] instances and
/// calls — [`RsCode::decode_with`] writes every cell it reads. Construct it
/// once per receiver and thread it through; [`RsCode::decode`] is a
/// convenience wrapper that builds one on the stack per call.
#[derive(Clone)]
pub struct RsScratch {
    /// Syndromes `S_j`, `2t` of them.
    synd: [u8; MAX_COEFFS],
    /// Running post-correction check: syndromes plus the correction delta.
    check: [u8; MAX_COEFFS],
    /// Forney syndromes (erasures folded in).
    fsynd: [u8; MAX_COEFFS],
    /// Erasure locator Γ(x).
    gamma: [u8; MAX_COEFFS],
    /// Error locator Λ(x) from Berlekamp–Massey.
    lambda: [u8; MAX_COEFFS],
    /// BM's previous locator B(x).
    prev: [u8; MAX_COEFFS],
    /// BM swap space, then the derivative Ψ'(x) during Forney.
    tmp: [u8; MAX_COEFFS],
    /// Combined locator Ψ(x) = Λ(x)·Γ(x).
    psi: [u8; MAX_COEFFS],
    /// Evaluator Ω(x) = S(x)·Ψ(x) mod x^{2t}.
    omega: [u8; MAX_COEFFS],
    /// Incremental Chien registers, one per Ψ coefficient.
    chien: [u8; MAX_COEFFS],
    /// Locator roots as transmitted positions (descending, as found).
    positions: [u8; MAX_COEFFS],
    /// Erasure-seen bitmap over the ≤ 255 codeword positions.
    seen: [u64; 4],
}

impl RsScratch {
    /// A zeroed scratch; contents never carry information between calls.
    pub fn new() -> Self {
        RsScratch {
            synd: [0; MAX_COEFFS],
            check: [0; MAX_COEFFS],
            fsynd: [0; MAX_COEFFS],
            gamma: [0; MAX_COEFFS],
            lambda: [0; MAX_COEFFS],
            prev: [0; MAX_COEFFS],
            tmp: [0; MAX_COEFFS],
            psi: [0; MAX_COEFFS],
            omega: [0; MAX_COEFFS],
            chien: [0; MAX_COEFFS],
            positions: [0; MAX_COEFFS],
            seen: [0; 4],
        }
    }
}

impl Default for RsScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for RsScratch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The arrays are working memory, not state worth printing.
        f.debug_struct("RsScratch").finish_non_exhaustive()
    }
}

/// `a · b` via the shared exp/log tables (with the usual zero guards).
#[inline]
fn gmul(exp: &[u8; 512], log: &[u8; 256], a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        exp[log[a as usize] as usize + log[b as usize] as usize]
    }
}

/// `a / b` for `b ≠ 0`.
#[inline]
fn gdiv(exp: &[u8; 512], log: &[u8; 256], a: u8, b: u8) -> u8 {
    if a == 0 {
        0
    } else {
        exp[log[a as usize] as usize + 255 - log[b as usize] as usize]
    }
}

/// Horner evaluation of `coeffs` (lowest degree first) at `x`.
#[inline]
fn geval(exp: &[u8; 512], log: &[u8; 256], coeffs: &[u8], x: u8) -> u8 {
    let mut acc = 0u8;
    for &c in coeffs.iter().rev() {
        acc = gmul(exp, log, acc, x) ^ c;
    }
    acc
}

/// A systematic `RS(n, k)` code over GF(2⁸); `n ≤ 255`.
///
/// Codewords are laid out `[data (k symbols) | parity (n − k symbols)]`.
///
/// # Examples
///
/// ```
/// use jrsnd_ecc::rs::RsCode;
///
/// let code = RsCode::new(20, 12).unwrap(); // corrects 4 errors / 8 erasures
/// let data = *b"hello jr-snd";
/// let mut cw = code.encode(&data).unwrap();
/// cw[0] ^= 0xAA; // flip a symbol
/// cw[7] ^= 0x55; // and another
/// let corrected = code.decode(&mut cw, &[]).unwrap();
/// assert_eq!(corrected, 2);
/// assert_eq!(&cw[..12], &data);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsCode {
    n: usize,
    k: usize,
    /// Generator polynomial, kept for the [`reference`] oracle.
    generator: Poly,
    /// LFSR feedback tables: `enc_tables[j][fb] = g_{2t−1−j} · fb`, so the
    /// register update `reg[j] = reg[j+1] ^ enc_tables[j][fb]` is one XOR
    /// and one lookup per parity slot per data symbol.
    enc_tables: Vec<[u8; 256]>,
    /// Syndrome Horner tables: `synd_tables[j][s] = s · α^j`, so each
    /// received symbol updates syndrome `j` with one lookup and one XOR —
    /// branchless, and the `2t` accumulator chains are independent.
    synd_tables: Vec<[u8; 256]>,
    /// Chien step tables: `chien_tables[i][r] = r · α^{−i}` for register
    /// `i`, turning the per-step register update into one lookup.
    chien_tables: Vec<[u8; 256]>,
}

impl RsCode {
    /// Creates an `RS(n, k)` code.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::LengthMismatch`] when the dimensions are invalid
    /// (`k == 0`, `n <= k`, or `n > 255`).
    pub fn new(n: usize, k: usize) -> Result<Self, RsError> {
        if k == 0 || n <= k || n > 255 {
            return Err(RsError::LengthMismatch {
                expected: n,
                got: k,
            });
        }
        // g(x) = prod_{i=0}^{2t-1} (x - alpha^i), first consecutive root alpha^0.
        let mut generator = Poly::one();
        for i in 0..(n - k) {
            let root = Gf256::alpha_pow(i);
            generator = generator.mul(&Poly::from_coeffs(vec![root, Gf256::ONE]));
        }
        let parity = n - k;
        let enc_tables = (0..parity)
            .map(|j| mul_table(generator.coeff(parity - 1 - j)))
            .collect();
        let synd_tables = (0..parity)
            .map(|j| mul_table(Gf256::alpha_pow(j)))
            .collect();
        // α^{−i} = α^{(255−i) mod 255}; i = 0 gives the identity table.
        let chien_tables = (0..=parity)
            .map(|i| mul_table(Gf256::alpha_pow((255 - i) % 255)))
            .collect();
        Ok(RsCode {
            n,
            k,
            generator,
            enc_tables,
            synd_tables,
            chien_tables,
        })
    }

    /// Codeword length in symbols.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Data length in symbols.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of parity symbols `2t = n − k`.
    pub fn parity(&self) -> usize {
        self.n - self.k
    }

    /// Maximum number of correctable errors `t` (with no erasures).
    pub fn t(&self) -> usize {
        (self.n - self.k) / 2
    }

    /// Polynomial coefficient index of transmitted position `p`:
    /// position 0 carries the highest-degree coefficient.
    #[inline]
    fn pos_to_exp(&self, p: usize) -> usize {
        self.n - 1 - p
    }

    /// Encodes `data` (exactly `k` bytes) into an `n`-byte codeword,
    /// `[data | parity]`.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::LengthMismatch`] if `data.len() != k`.
    pub fn encode(&self, data: &[u8]) -> Result<Vec<u8>, RsError> {
        let mut out = vec![0u8; self.n];
        self.encode_into(data, &mut out)?;
        Ok(out)
    }

    /// Encodes `data` (exactly `k` bytes) into the caller-provided `n`-byte
    /// codeword buffer, `[data | parity]` — the allocation-free kernel
    /// behind [`RsCode::encode`].
    ///
    /// The parity slots of `out` double as the LFSR remainder register, so
    /// the whole encode is `k · 2t` XOR-plus-lookup steps and two
    /// `memcpy`-class writes.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::LengthMismatch`] if `data.len() != k` or
    /// `out.len() != n`.
    pub fn encode_into(&self, data: &[u8], out: &mut [u8]) -> Result<(), RsError> {
        if data.len() != self.k {
            return Err(RsError::LengthMismatch {
                expected: self.k,
                got: data.len(),
            });
        }
        if out.len() != self.n {
            return Err(RsError::LengthMismatch {
                expected: self.n,
                got: out.len(),
            });
        }
        let parity = self.n - self.k;
        let (head, reg) = out.split_at_mut(self.k);
        head.copy_from_slice(data);
        reg.fill(0);
        let tables = &self.enc_tables[..];
        for &d in data {
            let fb = (d ^ reg[0]) as usize;
            for j in 0..parity - 1 {
                reg[j] = reg[j + 1] ^ tables[j][fb];
            }
            reg[parity - 1] = tables[parity - 1][fb];
        }
        metric_counter!("ecc.blocks_encoded").inc();
        Ok(())
    }

    /// Computes the `2t` syndromes into `synd`; returns whether all are
    /// zero. Horner with `α^j` is one table-add per nonzero accumulator.
    fn syndromes_into(&self, received: &[u8], synd: &mut [u8]) -> bool {
        let parity = self.n - self.k;
        let synd = &mut synd[..parity];
        synd.fill(0);
        // Symbol-major Horner: the 2t accumulator chains are independent,
        // so the table lookups pipeline instead of serialising per chain.
        for &b in received {
            for (s, t) in synd.iter_mut().zip(&self.synd_tables) {
                *s = t[*s as usize] ^ b;
            }
        }
        synd.iter().all(|&s| s == 0)
    }

    /// Decodes in place, correcting errors and the given `erasures`
    /// (transmitted positions). Returns the number of symbols corrected.
    ///
    /// Convenience wrapper over [`RsCode::decode_with`] with a stack-local
    /// [`RsScratch`]; hot paths should hold a scratch and call
    /// [`RsCode::decode_with`] directly.
    ///
    /// # Errors
    ///
    /// * [`RsError::LengthMismatch`] if `received.len() != n`;
    /// * [`RsError::BadErasure`] for out-of-range or duplicate erasures;
    /// * [`RsError::TooManyErrors`] when `2ν + e > 2t` or the locator is
    ///   inconsistent with the syndromes.
    pub fn decode(&self, received: &mut [u8], erasures: &[usize]) -> Result<usize, RsError> {
        self.decode_with(received, erasures, &mut RsScratch::new())
    }

    /// [`RsCode::decode`] with caller-provided working memory: zero heap
    /// allocations, table-driven throughout.
    ///
    /// The post-correction integrity check does **not** re-evaluate all `n`
    /// symbols: the syndromes are linear in the received word, so the check
    /// folds each applied correction `e_p` into the original syndromes as
    /// `S_j ← S_j + e_p·(α^j)^{n−1−p}` and verifies the result vanishes —
    /// `O(corrections · 2t)` instead of `O(n · 2t)`, and identical in value
    /// to the full recheck. In the erasures-only case this is exactly the
    /// "magnitudes already zeroed the syndromes incrementally" fast path.
    ///
    /// # Errors
    ///
    /// As [`RsCode::decode`].
    pub fn decode_with(
        &self,
        received: &mut [u8],
        erasures: &[usize],
        scratch: &mut RsScratch,
    ) -> Result<usize, RsError> {
        if received.len() != self.n {
            return Err(RsError::LengthMismatch {
                expected: self.n,
                got: received.len(),
            });
        }
        let parity = self.n - self.k;
        scratch.seen = [0u64; 4];
        for &e in erasures {
            if e >= self.n || scratch.seen[e >> 6] >> (e & 63) & 1 == 1 {
                return Err(RsError::BadErasure { position: e });
            }
            scratch.seen[e >> 6] |= 1 << (e & 63);
        }
        if erasures.len() > parity {
            return Err(RsError::TooManyErrors);
        }

        if self.syndromes_into(received, &mut scratch.synd) {
            metric_counter!("ecc.blocks_decoded").inc();
            return Ok(0);
        }
        let (exp, log) = raw_tables();

        // Erasure locator Gamma(x) = prod (1 - X_e x), built in place.
        scratch.gamma[0] = 1;
        let mut glen = 1usize;
        for &e in erasures {
            let xe = exp[self.pos_to_exp(e) % 255];
            scratch.gamma[glen] = 0;
            for i in (1..=glen).rev() {
                scratch.gamma[i] ^= gmul(exp, log, xe, scratch.gamma[i - 1]);
            }
            glen += 1;
        }

        // Forney syndromes: (S(x) * Gamma(x)) mod x^{2t}, dropping the first
        // e coefficients.
        let e_count = erasures.len();
        let flen = parity - e_count;
        for i in 0..flen {
            let c = i + e_count;
            let bmax = c.min(glen - 1);
            let mut acc = 0u8;
            for b in 0..=bmax {
                // S has exactly `parity` coefficients and c < parity.
                acc ^= gmul(exp, log, scratch.synd[c - b], scratch.gamma[b]);
            }
            scratch.fsynd[i] = acc;
        }

        // Error locator from Berlekamp-Massey on the Forney syndromes.
        let llen = berlekamp_massey(
            exp,
            log,
            &scratch.fsynd[..flen],
            &mut scratch.lambda,
            &mut scratch.prev,
            &mut scratch.tmp,
        );
        let nu = llen - 1;
        if 2 * nu + e_count > parity {
            return Err(RsError::TooManyErrors);
        }

        // Combined locator Psi = Lambda * Gamma (degree <= 2t here).
        let mut psilen = llen + glen - 1;
        for c in scratch.psi.iter_mut().take(psilen) {
            *c = 0;
        }
        for i in 0..llen {
            let a = scratch.lambda[i];
            if a == 0 {
                continue;
            }
            for j in 0..glen {
                scratch.psi[i + j] ^= gmul(exp, log, a, scratch.gamma[j]);
            }
        }
        while psilen > 0 && scratch.psi[psilen - 1] == 0 {
            psilen -= 1;
        }
        let psi_deg = psilen.saturating_sub(1);

        // Evaluator Omega = (S * Psi) mod x^{2t}.
        for i in 0..parity {
            let bmax = i.min(psilen.saturating_sub(1));
            let mut acc = 0u8;
            for b in 0..=bmax {
                acc ^= gmul(exp, log, scratch.synd[i - b], scratch.psi[b]);
            }
            scratch.omega[i] = acc;
        }

        // Incremental Chien search: register i starts at Psi_i and is
        // multiplied by alpha^{-i} each step, so step s holds the terms of
        // Psi(alpha^{-s}) and the sum never re-evaluates the polynomial.
        // Step s corresponds to transmitted position p = n-1-s.
        scratch.chien[..psilen].copy_from_slice(&scratch.psi[..psilen]);
        let mut found = 0usize;
        for s in 0..self.n {
            let mut val = 0u8;
            for &r in &scratch.chien[..psilen] {
                val ^= r;
            }
            if val == 0 {
                scratch.positions[found] = (self.n - 1 - s) as u8;
                found += 1;
            }
            for (r, t) in scratch.chien[..psilen].iter_mut().zip(&self.chien_tables) {
                *r = t[*r as usize];
            }
        }
        if found != psi_deg {
            // Locator roots missing from the position range: uncorrectable.
            return Err(RsError::TooManyErrors);
        }

        // Forney magnitudes: e_p = X_p * Omega(X_p^{-1}) / Psi'(X_p^{-1}).
        // In characteristic 2 the formal derivative keeps odd coefficients:
        // Psi'(x) = sum_{i odd} Psi_i x^{i-1}.
        let dlen = psilen.saturating_sub(1);
        for i in 0..dlen {
            scratch.tmp[i] = if i % 2 == 0 { scratch.psi[i + 1] } else { 0 };
        }
        // The check syndromes start as the originals and absorb each
        // correction's delta; they must vanish exactly when the full
        // recheck would.
        scratch.check[..parity].copy_from_slice(&scratch.synd[..parity]);
        // Positions were recorded with p descending; apply ascending to
        // mirror the reference pipeline exactly (including the state a
        // mid-loop failure leaves behind).
        for idx in (0..found).rev() {
            let p = scratch.positions[idx] as usize;
            let le = self.pos_to_exp(p); // < 255, the log of X_p
            let x = exp[le];
            let x_inv = exp[255 - le];
            let denom = geval(exp, log, &scratch.tmp[..dlen], x_inv);
            if denom == 0 {
                return Err(RsError::TooManyErrors);
            }
            let num = geval(exp, log, &scratch.omega[..parity], x_inv);
            let mag = gmul(exp, log, x, gdiv(exp, log, num, denom));
            received[p] ^= mag;
            if mag != 0 {
                let lm = log[mag as usize] as usize;
                let mut a = 0usize; // (j * le) mod 255, built incrementally
                for c in scratch.check.iter_mut().take(parity) {
                    *c ^= exp[lm + a];
                    a += le;
                    if a >= 255 {
                        a -= 255;
                    }
                }
            }
        }

        // Delta recheck: all (updated) syndromes must now vanish.
        if scratch.check[..parity].iter().any(|&c| c != 0) {
            return Err(RsError::TooManyErrors);
        }
        metric_counter!("ecc.blocks_decoded").inc();
        metric_counter!("ecc.symbols_corrected").add(found as u64);
        Ok(found)
    }

    /// Decodes `received` in place and returns just the data symbols as a
    /// slice of it — the zero-copy variant behind [`RsCode::decode_to_data`]
    /// (the expansion codec decodes chunks directly inside its staging
    /// buffer instead of copying each block out and back).
    ///
    /// # Errors
    ///
    /// As [`RsCode::decode`].
    pub fn decode_data_in_place<'a>(
        &self,
        received: &'a mut [u8],
        erasures: &[usize],
        scratch: &mut RsScratch,
    ) -> Result<&'a [u8], RsError> {
        self.decode_with(received, erasures, scratch)?;
        Ok(&received[..self.k])
    }

    /// Decodes and returns just the data symbols.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`RsCode::decode`].
    pub fn decode_to_data(&self, received: &[u8], erasures: &[usize]) -> Result<Vec<u8>, RsError> {
        let mut buf = received.to_vec();
        self.decode(&mut buf, erasures)?;
        buf.truncate(self.k);
        Ok(buf)
    }

    /// Whether `word` is a valid codeword (all syndromes zero).
    pub fn is_codeword(&self, word: &[u8]) -> bool {
        let mut synd = [0u8; MAX_COEFFS];
        word.len() == self.n && self.syndromes_into(word, &mut synd)
    }
}

/// Berlekamp–Massey over (Forney) syndromes on raw coefficient arrays.
///
/// `lambda`/`prev`/`tmp` are caller-provided working arrays; returns the
/// coefficient count of the trimmed locator (`degree + 1`). Mirrors the
/// [`reference`] implementation branch for branch.
fn berlekamp_massey(
    exp: &[u8; 512],
    log: &[u8; 256],
    fsynd: &[u8],
    lambda: &mut [u8; MAX_COEFFS],
    prev: &mut [u8; MAX_COEFFS],
    tmp: &mut [u8; MAX_COEFFS],
) -> usize {
    lambda[0] = 1;
    let mut llen = 1usize;
    prev[0] = 1;
    let mut plen = 1usize;
    let mut l = 0usize;
    let mut m = 1usize;
    let mut prev_disc = 1u8;
    for nn in 0..fsynd.len() {
        let mut d = fsynd[nn];
        for i in 1..=l.min(nn) {
            if i < llen {
                d ^= gmul(exp, log, lambda[i], fsynd[nn - i]);
            }
        }
        if d == 0 {
            m += 1;
            continue;
        }
        let factor = gdiv(exp, log, d, prev_disc);
        if 2 * l <= nn {
            tmp[..llen].copy_from_slice(&lambda[..llen]);
            let tlen = llen;
            llen = add_scaled_shifted(exp, log, lambda, llen, prev, plen, m, factor);
            l = nn + 1 - l;
            prev[..tlen].copy_from_slice(&tmp[..tlen]);
            plen = tlen;
            prev_disc = d;
            m = 1;
        } else {
            llen = add_scaled_shifted(exp, log, lambda, llen, prev, plen, m, factor);
            m += 1;
        }
    }
    llen
}

/// `lambda += factor · prev · x^shift`, trimming trailing zeros; returns
/// the new coefficient count (always ≥ 1: the constant term stays 1).
#[allow(clippy::too_many_arguments)]
fn add_scaled_shifted(
    exp: &[u8; 512],
    log: &[u8; 256],
    lambda: &mut [u8; MAX_COEFFS],
    llen: usize,
    prev: &[u8; MAX_COEFFS],
    plen: usize,
    shift: usize,
    factor: u8,
) -> usize {
    let new_len = llen.max(plen + shift);
    for c in lambda.iter_mut().take(new_len).skip(llen) {
        *c = 0;
    }
    for i in 0..plen {
        lambda[i + shift] ^= gmul(exp, log, factor, prev[i]);
    }
    let mut len = new_len;
    while len > 0 && lambda[len - 1] == 0 {
        len -= 1;
    }
    len
}

/// The original polynomial-arithmetic codec, kept as the equivalence
/// oracle for the table-driven kernels (the PR 1/3 pattern: every fast
/// path ships with the slow implementation it must match byte for byte).
pub mod reference {
    use super::{Gf256, Poly, RsCode, RsError};

    fn syndromes(code: &RsCode, received: &[u8]) -> Vec<Gf256> {
        (0..code.parity())
            .map(|j| {
                let aj = Gf256::alpha_pow(j);
                let mut acc = Gf256::ZERO;
                // Horner over descending positions: c(x) evaluated at alpha^j.
                for &b in received {
                    acc = acc * aj + Gf256::new(b);
                }
                acc
            })
            .collect()
    }

    /// Berlekamp–Massey over (Forney) syndromes; returns the error locator.
    fn berlekamp_massey(synd: &[Gf256]) -> Poly {
        let mut lambda = Poly::one();
        let mut prev = Poly::one();
        let mut l = 0usize;
        let mut m = 1usize;
        let mut prev_disc = Gf256::ONE;
        for nn in 0..synd.len() {
            let mut d = synd[nn];
            for i in 1..=l.min(nn) {
                d += lambda.coeff(i) * synd[nn - i];
            }
            if d.is_zero() {
                m += 1;
            } else if 2 * l <= nn {
                let t = lambda.clone();
                let factor = d * prev_disc.inverse().expect("prev discrepancy nonzero");
                lambda = lambda.add(&prev.shift(m).scale(factor));
                l = nn + 1 - l;
                prev = t;
                prev_disc = d;
                m = 1;
            } else {
                let factor = d * prev_disc.inverse().expect("prev discrepancy nonzero");
                lambda = lambda.add(&prev.shift(m).scale(factor));
                m += 1;
            }
        }
        lambda
    }

    /// Polynomial-division systematic encode (the original
    /// [`RsCode::encode`]).
    ///
    /// # Errors
    ///
    /// Returns [`RsError::LengthMismatch`] if `data.len() != k`.
    pub fn encode(code: &RsCode, data: &[u8]) -> Result<Vec<u8>, RsError> {
        if data.len() != code.k {
            return Err(RsError::LengthMismatch {
                expected: code.k,
                got: data.len(),
            });
        }
        // m(x) * x^{2t} with data[0] as the highest-degree coefficient.
        let mut coeffs = vec![Gf256::ZERO; code.n];
        for (p, &b) in data.iter().enumerate() {
            coeffs[code.pos_to_exp(p)] = Gf256::new(b);
        }
        let shifted = Poly::from_coeffs(coeffs);
        let (_, rem) = shifted.div_rem(&code.generator);
        let mut out = Vec::with_capacity(code.n);
        out.extend_from_slice(data);
        // Parity at positions k..n, i.e. exponents 2t-1 down to 0.
        for p in code.k..code.n {
            out.push(rem.coeff(code.pos_to_exp(p)).value());
        }
        Ok(out)
    }

    /// Polynomial-pipeline errors-and-erasures decode (the original
    /// [`RsCode::decode`]).
    ///
    /// # Errors
    ///
    /// As [`RsCode::decode`].
    pub fn decode(
        code: &RsCode,
        received: &mut [u8],
        erasures: &[usize],
    ) -> Result<usize, RsError> {
        if received.len() != code.n {
            return Err(RsError::LengthMismatch {
                expected: code.n,
                got: received.len(),
            });
        }
        let mut seen = vec![false; code.n];
        for &e in erasures {
            if e >= code.n || seen[e] {
                return Err(RsError::BadErasure { position: e });
            }
            seen[e] = true;
        }
        if erasures.len() > code.parity() {
            return Err(RsError::TooManyErrors);
        }

        let synd = syndromes(code, received);
        if synd.iter().all(|s| s.is_zero()) {
            return Ok(0);
        }

        // Erasure locator Gamma(x) = prod (1 - X_e x).
        let mut gamma = Poly::one();
        for &e in erasures {
            let x_e = Gf256::alpha_pow(code.pos_to_exp(e));
            gamma = gamma.mul(&Poly::from_coeffs(vec![Gf256::ONE, x_e]));
        }

        // Forney syndromes: (S(x) * Gamma(x)) mod x^{2t}, dropping the first
        // e coefficients.
        let s_poly = Poly::from_coeffs(synd.clone());
        let prod = s_poly.mul(&gamma);
        let fsynd: Vec<Gf256> = (erasures.len()..code.parity())
            .map(|i| prod.coeff(i))
            .collect();

        // Error locator from BM on the Forney syndromes.
        let lambda = berlekamp_massey(&fsynd);
        let nu = lambda.degree().unwrap_or(0);
        if 2 * nu + erasures.len() > code.parity() {
            return Err(RsError::TooManyErrors);
        }

        // Combined locator and evaluator.
        let psi = lambda.mul(&gamma);
        let omega_full = s_poly.mul(&psi);
        let omega = Poly::from_coeffs((0..code.parity()).map(|i| omega_full.coeff(i)).collect());

        // Chien search over all transmitted positions.
        let mut positions = Vec::new();
        for p in 0..code.n {
            let x_inv = Gf256::alpha_pow(code.pos_to_exp(p))
                .inverse()
                .expect("alpha powers are nonzero");
            if psi.eval(x_inv).is_zero() {
                positions.push(p);
            }
        }
        let psi_deg = psi.degree().unwrap_or(0);
        if positions.len() != psi_deg {
            // Locator roots missing from the position range: uncorrectable.
            return Err(RsError::TooManyErrors);
        }

        // Forney magnitudes: e_p = X_p * Omega(X_p^{-1}) / Psi'(X_p^{-1}).
        let psi_der = psi.derivative();
        for &p in &positions {
            let x = Gf256::alpha_pow(code.pos_to_exp(p));
            let x_inv = x.inverse().expect("nonzero");
            let denom = psi_der.eval(x_inv);
            if denom.is_zero() {
                return Err(RsError::TooManyErrors);
            }
            let mag = x * omega.eval(x_inv) / denom;
            received[p] ^= mag.value();
        }

        // Re-check: all syndromes must now vanish.
        if syndromes(code, received).iter().any(|s| !s.is_zero()) {
            return Err(RsError::TooManyErrors);
        }
        Ok(positions.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn invalid_dimensions_rejected() {
        assert!(RsCode::new(10, 0).is_err());
        assert!(RsCode::new(10, 10).is_err());
        assert!(RsCode::new(256, 100).is_err());
        assert!(RsCode::new(255, 223).is_ok());
    }

    #[test]
    fn encode_is_systematic_and_valid() {
        let code = RsCode::new(15, 9).unwrap();
        let data: Vec<u8> = (0..9).collect();
        let cw = code.encode(&data).unwrap();
        assert_eq!(cw.len(), 15);
        assert_eq!(&cw[..9], &data[..]);
        assert!(code.is_codeword(&cw));
    }

    #[test]
    fn lfsr_encode_matches_reference_across_shapes() {
        let mut r = rng(7);
        for (n, k) in [(2usize, 1usize), (12, 6), (31, 19), (255, 223), (255, 1)] {
            let code = RsCode::new(n, k).unwrap();
            for _ in 0..20 {
                let data: Vec<u8> = (0..k).map(|_| r.gen()).collect();
                assert_eq!(
                    code.encode(&data).unwrap(),
                    reference::encode(&code, &data).unwrap(),
                    "RS({n},{k})"
                );
            }
        }
    }

    #[test]
    fn fast_decode_matches_reference_on_mixed_corruption() {
        let code = RsCode::new(32, 20).unwrap(); // 2t = 12
        let mut r = rng(8);
        let mut scratch = RsScratch::new();
        for trial in 0..200 {
            let data: Vec<u8> = (0..20).map(|_| r.gen()).collect();
            let clean = code.encode(&data).unwrap();
            // Sometimes beyond capacity on purpose.
            let nu = r.gen_range(0..=8);
            let e = r.gen_range(0..=8.min(32 - nu));
            let mut positions: Vec<usize> = (0..32).collect();
            for i in 0..(nu + e) {
                let j = r.gen_range(i..32);
                positions.swap(i, j);
            }
            let mut cw = clean.clone();
            for &p in &positions[..nu] {
                cw[p] ^= r.gen_range(1..=255u8);
            }
            for &p in &positions[nu..nu + e] {
                cw[p] = r.gen();
            }
            let era = &positions[nu..nu + e];
            let mut fast = cw.clone();
            let mut slow = cw.clone();
            let fr = code.decode_with(&mut fast, era, &mut scratch);
            let sr = reference::decode(&code, &mut slow, era);
            assert_eq!(fr, sr, "trial {trial}: nu={nu} e={e}");
            assert_eq!(fast, slow, "trial {trial}: buffers diverged");
        }
    }

    #[test]
    fn clean_codeword_decodes_with_zero_corrections() {
        let code = RsCode::new(20, 12).unwrap();
        let data: Vec<u8> = (100..112).collect();
        let mut cw = code.encode(&data).unwrap();
        assert_eq!(code.decode(&mut cw, &[]).unwrap(), 0);
        assert_eq!(&cw[..12], &data[..]);
    }

    #[test]
    fn corrects_up_to_t_errors() {
        let code = RsCode::new(31, 19).unwrap(); // t = 6
        let mut r = rng(1);
        for trial in 0..50 {
            let data: Vec<u8> = (0..19).map(|_| r.gen()).collect();
            let clean = code.encode(&data).unwrap();
            for nerr in 0..=6 {
                let mut cw = clean.clone();
                let mut positions: Vec<usize> = (0..31).collect();
                for i in 0..nerr {
                    let j = r.gen_range(i..31);
                    positions.swap(i, j);
                }
                for &p in &positions[..nerr] {
                    let flip = r.gen_range(1..=255u8);
                    cw[p] ^= flip;
                }
                let fixed = code.decode(&mut cw, &[]).unwrap();
                assert_eq!(&cw[..19], &data[..], "trial {trial}, {nerr} errors");
                assert_eq!(fixed, nerr);
            }
        }
    }

    #[test]
    fn corrects_up_to_2t_erasures() {
        let code = RsCode::new(24, 12).unwrap(); // 2t = 12 erasures
        let mut r = rng(2);
        for _ in 0..50 {
            let data: Vec<u8> = (0..12).map(|_| r.gen()).collect();
            let clean = code.encode(&data).unwrap();
            let ne = r.gen_range(0..=12);
            let mut positions: Vec<usize> = (0..24).collect();
            for i in 0..ne {
                let j = r.gen_range(i..24);
                positions.swap(i, j);
            }
            let erasures: Vec<usize> = positions[..ne].to_vec();
            let mut cw = clean.clone();
            for &p in &erasures {
                cw[p] = r.gen(); // arbitrary garbage at erased positions
            }
            code.decode(&mut cw, &erasures).unwrap();
            assert_eq!(&cw[..12], &data[..]);
        }
    }

    #[test]
    fn corrects_mixed_errors_and_erasures() {
        let code = RsCode::new(32, 20).unwrap(); // 2t = 12
        let mut r = rng(3);
        for _ in 0..100 {
            let data: Vec<u8> = (0..20).map(|_| r.gen()).collect();
            let clean = code.encode(&data).unwrap();
            // Pick nu errors + e erasures with 2nu + e <= 12.
            let nu = r.gen_range(0..=6);
            let e_max = 12 - 2 * nu;
            let e = r.gen_range(0..=e_max);
            let mut positions: Vec<usize> = (0..32).collect();
            for i in 0..(nu + e) {
                let j = r.gen_range(i..32);
                positions.swap(i, j);
            }
            let err_pos = &positions[..nu];
            let era_pos = &positions[nu..nu + e];
            let mut cw = clean.clone();
            for &p in err_pos {
                cw[p] ^= r.gen_range(1..=255u8);
            }
            for &p in era_pos {
                cw[p] = r.gen();
            }
            code.decode(&mut cw, era_pos).unwrap();
            assert_eq!(&cw[..20], &data[..], "nu={nu}, e={e}");
        }
    }

    #[test]
    fn beyond_capacity_is_detected_not_miscorrected_mostly() {
        // With > t errors decoding must either error out or (rarely) land on
        // a different codeword; it must never return Ok with a non-codeword.
        let code = RsCode::new(20, 14).unwrap(); // t = 3
        let mut r = rng(4);
        let mut failures = 0;
        for _ in 0..200 {
            let data: Vec<u8> = (0..14).map(|_| r.gen()).collect();
            let mut cw = code.encode(&data).unwrap();
            // 5 errors > t = 3.
            let mut positions: Vec<usize> = (0..20).collect();
            for i in 0..5 {
                let j = r.gen_range(i..20);
                positions.swap(i, j);
            }
            for &p in &positions[..5] {
                cw[p] ^= r.gen_range(1..=255u8);
            }
            match code.decode(&mut cw, &[]) {
                Err(RsError::TooManyErrors) => failures += 1,
                Ok(_) => assert!(code.is_codeword(&cw)),
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
        assert!(failures > 150, "only {failures}/200 detected");
    }

    #[test]
    fn erasure_validation() {
        let code = RsCode::new(10, 6).unwrap();
        let mut cw = code.encode(&[0; 6]).unwrap();
        assert_eq!(
            code.decode(&mut cw.clone(), &[10]),
            Err(RsError::BadErasure { position: 10 })
        );
        assert_eq!(
            code.decode(&mut cw.clone(), &[3, 3]),
            Err(RsError::BadErasure { position: 3 })
        );
        assert_eq!(
            code.decode(&mut cw, &[0, 1, 2, 3, 4]),
            Err(RsError::TooManyErrors)
        );
    }

    #[test]
    fn wrong_lengths_rejected() {
        let code = RsCode::new(10, 6).unwrap();
        assert!(matches!(
            code.encode(&[0; 5]),
            Err(RsError::LengthMismatch {
                expected: 6,
                got: 5
            })
        ));
        let mut short = vec![0u8; 9];
        assert!(matches!(
            code.decode(&mut short, &[]),
            Err(RsError::LengthMismatch {
                expected: 10,
                got: 9
            })
        ));
        let mut small = [0u8; 9];
        assert!(matches!(
            code.encode_into(&[0; 6], &mut small),
            Err(RsError::LengthMismatch {
                expected: 10,
                got: 9
            })
        ));
    }

    #[test]
    fn decode_to_data_strips_parity() {
        let code = RsCode::new(12, 5).unwrap();
        let data = [9, 8, 7, 6, 5];
        let mut cw = code.encode(&data).unwrap();
        cw[2] ^= 0xF0;
        let out = code.decode_to_data(&cw, &[]).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn decode_data_in_place_returns_data_slice() {
        let code = RsCode::new(12, 5).unwrap();
        let data = [9, 8, 7, 6, 5];
        let mut cw = code.encode(&data).unwrap();
        cw[2] ^= 0xF0;
        cw[9] ^= 0x0F;
        let mut scratch = RsScratch::new();
        let out = code
            .decode_data_in_place(&mut cw, &[], &mut scratch)
            .unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn scratch_reuse_is_invisible() {
        // The same scratch threaded through wildly different codes and
        // corruption patterns must never change any outcome.
        let mut r = rng(9);
        let mut scratch = RsScratch::new();
        for trial in 0..60 {
            let k = r.gen_range(1usize..60);
            let parity = r.gen_range(2usize..20);
            let n = k + parity;
            if n > 255 {
                continue;
            }
            let code = RsCode::new(n, k).unwrap();
            let data: Vec<u8> = (0..k).map(|_| r.gen()).collect();
            let mut cw = code.encode(&data).unwrap();
            let nerr = r.gen_range(0..=parity / 2);
            for i in 0..nerr {
                cw[(i * 3) % n] ^= r.gen_range(1..=255u8);
            }
            let mut with_fresh = cw.clone();
            let mut with_reused = cw.clone();
            let fresh = code.decode_with(&mut with_fresh, &[], &mut RsScratch::new());
            let reused = code.decode_with(&mut with_reused, &[], &mut scratch);
            assert_eq!(fresh, reused, "trial {trial}");
            assert_eq!(with_fresh, with_reused, "trial {trial}");
        }
    }

    #[test]
    fn paper_scale_rate_half_code() {
        // The D-NDP HELLO with mu = 1: l_h = 2 * (l_t + l_id) = 42 bits.
        // At byte granularity: 6 data bytes -> RS(12, 6), correcting 6
        // erasures = half the codeword, i.e. mu/(1+mu) of the bits.
        let code = RsCode::new(12, 6).unwrap();
        let data = *b"HELLO!";
        let cw = code.encode(&data).unwrap();
        let mut corrupted = cw.clone();
        let erasures = [0usize, 2, 4, 6, 8, 10];
        for &p in &erasures {
            corrupted[p] = 0xFF;
        }
        let out = code.decode_to_data(&corrupted, &erasures).unwrap();
        assert_eq!(out, data);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn decode_inverts_encode_under_capacity(
            seed in 0u64..10_000,
            k in 1usize..40,
            parity in 2usize..16,
            data in proptest::collection::vec(0u8..=255, 40),
        ) {
            use rand::{Rng, SeedableRng};
            let n = k + parity;
            prop_assume!(n <= 255);
            let code = RsCode::new(n, k).unwrap();
            let data = &data[..k];
            let clean = code.encode(data).unwrap();
            let mut r = rand::rngs::StdRng::seed_from_u64(seed);
            let nu = r.gen_range(0..=parity / 2);
            let e = r.gen_range(0..=(parity - 2 * nu));
            let mut positions: Vec<usize> = (0..n).collect();
            for i in 0..(nu + e) {
                let j = r.gen_range(i..n);
                positions.swap(i, j);
            }
            let mut cw = clean.clone();
            for &p in &positions[..nu] {
                cw[p] ^= r.gen_range(1..=255u8);
            }
            for &p in &positions[nu..nu + e] {
                cw[p] = r.gen();
            }
            code.decode(&mut cw, &positions[nu..nu + e]).unwrap();
            prop_assert_eq!(&cw[..k], data);
        }
    }
}
