//! A systematic Reed–Solomon codec over GF(2⁸) with errors-and-erasures
//! decoding.
//!
//! This is the "\[15\] Reed & Solomon 1960" code the paper cites for encoding
//! every D-NDP message. The implementation is the classical pipeline:
//! syndromes → Forney syndromes (folding in known erasures) →
//! Berlekamp–Massey → Chien search → Forney magnitudes.
//!
//! A code `RS(n, k)` with `2t = n − k` parity symbols corrects any pattern
//! of ν errors and e erasures with `2ν + e ≤ 2t`.

use crate::gf256::Gf256;
use crate::poly::Poly;
use std::fmt;

/// Errors returned by the Reed–Solomon codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsError {
    /// The corruption exceeded the code's correction capability.
    TooManyErrors,
    /// An erasure index was out of range or duplicated.
    BadErasure {
        /// The offending position.
        position: usize,
    },
    /// Input length does not match the code dimensions.
    LengthMismatch {
        /// Expected number of symbols.
        expected: usize,
        /// Number of symbols supplied.
        got: usize,
    },
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::TooManyErrors => write!(f, "corruption exceeds correction capability"),
            RsError::BadErasure { position } => {
                write!(f, "invalid or duplicate erasure position {position}")
            }
            RsError::LengthMismatch { expected, got } => {
                write!(f, "expected {expected} symbols, got {got}")
            }
        }
    }
}

impl std::error::Error for RsError {}

/// A systematic `RS(n, k)` code over GF(2⁸); `n ≤ 255`.
///
/// Codewords are laid out `[data (k symbols) | parity (n − k symbols)]`.
///
/// # Examples
///
/// ```
/// use jrsnd_ecc::rs::RsCode;
///
/// let code = RsCode::new(20, 12).unwrap(); // corrects 4 errors / 8 erasures
/// let data = *b"hello jr-snd";
/// let mut cw = code.encode(&data).unwrap();
/// cw[0] ^= 0xAA; // flip a symbol
/// cw[7] ^= 0x55; // and another
/// let corrected = code.decode(&mut cw, &[]).unwrap();
/// assert_eq!(corrected, 2);
/// assert_eq!(&cw[..12], &data);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsCode {
    n: usize,
    k: usize,
    generator: Poly,
}

impl RsCode {
    /// Creates an `RS(n, k)` code.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::LengthMismatch`] when the dimensions are invalid
    /// (`k == 0`, `n <= k`, or `n > 255`).
    pub fn new(n: usize, k: usize) -> Result<Self, RsError> {
        if k == 0 || n <= k || n > 255 {
            return Err(RsError::LengthMismatch {
                expected: n,
                got: k,
            });
        }
        // g(x) = prod_{i=0}^{2t-1} (x - alpha^i), first consecutive root alpha^0.
        let mut generator = Poly::one();
        for i in 0..(n - k) {
            let root = Gf256::alpha_pow(i);
            generator = generator.mul(&Poly::from_coeffs(vec![root, Gf256::ONE]));
        }
        Ok(RsCode { n, k, generator })
    }

    /// Codeword length in symbols.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Data length in symbols.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of parity symbols `2t = n − k`.
    pub fn parity(&self) -> usize {
        self.n - self.k
    }

    /// Maximum number of correctable errors `t` (with no erasures).
    pub fn t(&self) -> usize {
        (self.n - self.k) / 2
    }

    /// Polynomial coefficient index of transmitted position `p`:
    /// position 0 carries the highest-degree coefficient.
    #[inline]
    fn pos_to_exp(&self, p: usize) -> usize {
        self.n - 1 - p
    }

    /// Encodes `data` (exactly `k` bytes) into an `n`-byte codeword,
    /// `[data | parity]`.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::LengthMismatch`] if `data.len() != k`.
    pub fn encode(&self, data: &[u8]) -> Result<Vec<u8>, RsError> {
        if data.len() != self.k {
            return Err(RsError::LengthMismatch {
                expected: self.k,
                got: data.len(),
            });
        }
        // m(x) * x^{2t} with data[0] as the highest-degree coefficient.
        let mut coeffs = vec![Gf256::ZERO; self.n];
        for (p, &b) in data.iter().enumerate() {
            coeffs[self.pos_to_exp(p)] = Gf256::new(b);
        }
        let shifted = Poly::from_coeffs(coeffs);
        let (_, rem) = shifted.div_rem(&self.generator);
        let mut out = Vec::with_capacity(self.n);
        out.extend_from_slice(data);
        // Parity at positions k..n, i.e. exponents 2t-1 down to 0.
        for p in self.k..self.n {
            out.push(rem.coeff(self.pos_to_exp(p)).value());
        }
        Ok(out)
    }

    fn syndromes(&self, received: &[u8]) -> Vec<Gf256> {
        (0..self.parity())
            .map(|j| {
                let aj = Gf256::alpha_pow(j);
                let mut acc = Gf256::ZERO;
                // Horner over descending positions: c(x) evaluated at alpha^j.
                for &b in received {
                    acc = acc * aj + Gf256::new(b);
                }
                acc
            })
            .collect()
    }

    /// Berlekamp–Massey over (Forney) syndromes; returns the error locator.
    fn berlekamp_massey(synd: &[Gf256]) -> Poly {
        let mut lambda = Poly::one();
        let mut prev = Poly::one();
        let mut l = 0usize;
        let mut m = 1usize;
        let mut prev_disc = Gf256::ONE;
        for nn in 0..synd.len() {
            let mut d = synd[nn];
            for i in 1..=l.min(nn) {
                d += lambda.coeff(i) * synd[nn - i];
            }
            if d.is_zero() {
                m += 1;
            } else if 2 * l <= nn {
                let t = lambda.clone();
                let factor = d * prev_disc.inverse().expect("prev discrepancy nonzero");
                lambda = lambda.add(&prev.shift(m).scale(factor));
                l = nn + 1 - l;
                prev = t;
                prev_disc = d;
                m = 1;
            } else {
                let factor = d * prev_disc.inverse().expect("prev discrepancy nonzero");
                lambda = lambda.add(&prev.shift(m).scale(factor));
                m += 1;
            }
        }
        lambda
    }

    /// Decodes in place, correcting errors and the given `erasures`
    /// (transmitted positions). Returns the number of symbols corrected.
    ///
    /// # Errors
    ///
    /// * [`RsError::LengthMismatch`] if `received.len() != n`;
    /// * [`RsError::BadErasure`] for out-of-range or duplicate erasures;
    /// * [`RsError::TooManyErrors`] when `2ν + e > 2t` or the locator is
    ///   inconsistent with the syndromes.
    pub fn decode(&self, received: &mut [u8], erasures: &[usize]) -> Result<usize, RsError> {
        if received.len() != self.n {
            return Err(RsError::LengthMismatch {
                expected: self.n,
                got: received.len(),
            });
        }
        let mut seen = vec![false; self.n];
        for &e in erasures {
            if e >= self.n || seen[e] {
                return Err(RsError::BadErasure { position: e });
            }
            seen[e] = true;
        }
        if erasures.len() > self.parity() {
            return Err(RsError::TooManyErrors);
        }

        let synd = self.syndromes(received);
        if synd.iter().all(|s| s.is_zero()) {
            return Ok(0);
        }

        // Erasure locator Gamma(x) = prod (1 - X_e x).
        let mut gamma = Poly::one();
        for &e in erasures {
            let x_e = Gf256::alpha_pow(self.pos_to_exp(e));
            gamma = gamma.mul(&Poly::from_coeffs(vec![Gf256::ONE, x_e]));
        }

        // Forney syndromes: (S(x) * Gamma(x)) mod x^{2t}, dropping the first
        // e coefficients.
        let s_poly = Poly::from_coeffs(synd.clone());
        let prod = s_poly.mul(&gamma);
        let fsynd: Vec<Gf256> = (erasures.len()..self.parity())
            .map(|i| prod.coeff(i))
            .collect();

        // Error locator from BM on the Forney syndromes.
        let lambda = Self::berlekamp_massey(&fsynd);
        let nu = lambda.degree().unwrap_or(0);
        if 2 * nu + erasures.len() > self.parity() {
            return Err(RsError::TooManyErrors);
        }

        // Combined locator and evaluator.
        let psi = lambda.mul(&gamma);
        let omega_full = s_poly.mul(&psi);
        let omega = Poly::from_coeffs((0..self.parity()).map(|i| omega_full.coeff(i)).collect());

        // Chien search over all transmitted positions.
        let mut positions = Vec::new();
        for p in 0..self.n {
            let x_inv = Gf256::alpha_pow(self.pos_to_exp(p))
                .inverse()
                .expect("alpha powers are nonzero");
            if psi.eval(x_inv).is_zero() {
                positions.push(p);
            }
        }
        let psi_deg = psi.degree().unwrap_or(0);
        if positions.len() != psi_deg {
            // Locator roots missing from the position range: uncorrectable.
            return Err(RsError::TooManyErrors);
        }

        // Forney magnitudes: e_p = X_p * Omega(X_p^{-1}) / Psi'(X_p^{-1}).
        let psi_der = psi.derivative();
        for &p in &positions {
            let x = Gf256::alpha_pow(self.pos_to_exp(p));
            let x_inv = x.inverse().expect("nonzero");
            let denom = psi_der.eval(x_inv);
            if denom.is_zero() {
                return Err(RsError::TooManyErrors);
            }
            let mag = x * omega.eval(x_inv) / denom;
            received[p] ^= mag.value();
        }

        // Re-check: all syndromes must now vanish.
        if self.syndromes(received).iter().any(|s| !s.is_zero()) {
            return Err(RsError::TooManyErrors);
        }
        Ok(positions.len())
    }

    /// Decodes and returns just the data symbols.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`RsCode::decode`].
    pub fn decode_to_data(&self, received: &[u8], erasures: &[usize]) -> Result<Vec<u8>, RsError> {
        let mut buf = received.to_vec();
        self.decode(&mut buf, erasures)?;
        buf.truncate(self.k);
        Ok(buf)
    }

    /// Whether `word` is a valid codeword (all syndromes zero).
    pub fn is_codeword(&self, word: &[u8]) -> bool {
        word.len() == self.n && self.syndromes(word).iter().all(|s| s.is_zero())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn invalid_dimensions_rejected() {
        assert!(RsCode::new(10, 0).is_err());
        assert!(RsCode::new(10, 10).is_err());
        assert!(RsCode::new(256, 100).is_err());
        assert!(RsCode::new(255, 223).is_ok());
    }

    #[test]
    fn encode_is_systematic_and_valid() {
        let code = RsCode::new(15, 9).unwrap();
        let data: Vec<u8> = (0..9).collect();
        let cw = code.encode(&data).unwrap();
        assert_eq!(cw.len(), 15);
        assert_eq!(&cw[..9], &data[..]);
        assert!(code.is_codeword(&cw));
    }

    #[test]
    fn clean_codeword_decodes_with_zero_corrections() {
        let code = RsCode::new(20, 12).unwrap();
        let data: Vec<u8> = (100..112).collect();
        let mut cw = code.encode(&data).unwrap();
        assert_eq!(code.decode(&mut cw, &[]).unwrap(), 0);
        assert_eq!(&cw[..12], &data[..]);
    }

    #[test]
    fn corrects_up_to_t_errors() {
        let code = RsCode::new(31, 19).unwrap(); // t = 6
        let mut r = rng(1);
        for trial in 0..50 {
            let data: Vec<u8> = (0..19).map(|_| r.gen()).collect();
            let clean = code.encode(&data).unwrap();
            for nerr in 0..=6 {
                let mut cw = clean.clone();
                let mut positions: Vec<usize> = (0..31).collect();
                for i in 0..nerr {
                    let j = r.gen_range(i..31);
                    positions.swap(i, j);
                }
                for &p in &positions[..nerr] {
                    let flip = r.gen_range(1..=255u8);
                    cw[p] ^= flip;
                }
                let fixed = code.decode(&mut cw, &[]).unwrap();
                assert_eq!(&cw[..19], &data[..], "trial {trial}, {nerr} errors");
                assert_eq!(fixed, nerr);
            }
        }
    }

    #[test]
    fn corrects_up_to_2t_erasures() {
        let code = RsCode::new(24, 12).unwrap(); // 2t = 12 erasures
        let mut r = rng(2);
        for _ in 0..50 {
            let data: Vec<u8> = (0..12).map(|_| r.gen()).collect();
            let clean = code.encode(&data).unwrap();
            let ne = r.gen_range(0..=12);
            let mut positions: Vec<usize> = (0..24).collect();
            for i in 0..ne {
                let j = r.gen_range(i..24);
                positions.swap(i, j);
            }
            let erasures: Vec<usize> = positions[..ne].to_vec();
            let mut cw = clean.clone();
            for &p in &erasures {
                cw[p] = r.gen(); // arbitrary garbage at erased positions
            }
            code.decode(&mut cw, &erasures).unwrap();
            assert_eq!(&cw[..12], &data[..]);
        }
    }

    #[test]
    fn corrects_mixed_errors_and_erasures() {
        let code = RsCode::new(32, 20).unwrap(); // 2t = 12
        let mut r = rng(3);
        for _ in 0..100 {
            let data: Vec<u8> = (0..20).map(|_| r.gen()).collect();
            let clean = code.encode(&data).unwrap();
            // Pick nu errors + e erasures with 2nu + e <= 12.
            let nu = r.gen_range(0..=6);
            let e_max = 12 - 2 * nu;
            let e = r.gen_range(0..=e_max);
            let mut positions: Vec<usize> = (0..32).collect();
            for i in 0..(nu + e) {
                let j = r.gen_range(i..32);
                positions.swap(i, j);
            }
            let err_pos = &positions[..nu];
            let era_pos = &positions[nu..nu + e];
            let mut cw = clean.clone();
            for &p in err_pos {
                cw[p] ^= r.gen_range(1..=255u8);
            }
            for &p in era_pos {
                cw[p] = r.gen();
            }
            code.decode(&mut cw, era_pos).unwrap();
            assert_eq!(&cw[..20], &data[..], "nu={nu}, e={e}");
        }
    }

    #[test]
    fn beyond_capacity_is_detected_not_miscorrected_mostly() {
        // With > t errors decoding must either error out or (rarely) land on
        // a different codeword; it must never return Ok with a non-codeword.
        let code = RsCode::new(20, 14).unwrap(); // t = 3
        let mut r = rng(4);
        let mut failures = 0;
        for _ in 0..200 {
            let data: Vec<u8> = (0..14).map(|_| r.gen()).collect();
            let mut cw = code.encode(&data).unwrap();
            // 5 errors > t = 3.
            let mut positions: Vec<usize> = (0..20).collect();
            for i in 0..5 {
                let j = r.gen_range(i..20);
                positions.swap(i, j);
            }
            for &p in &positions[..5] {
                cw[p] ^= r.gen_range(1..=255u8);
            }
            match code.decode(&mut cw, &[]) {
                Err(RsError::TooManyErrors) => failures += 1,
                Ok(_) => assert!(code.is_codeword(&cw)),
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
        assert!(failures > 150, "only {failures}/200 detected");
    }

    #[test]
    fn erasure_validation() {
        let code = RsCode::new(10, 6).unwrap();
        let mut cw = code.encode(&[0; 6]).unwrap();
        assert_eq!(
            code.decode(&mut cw.clone(), &[10]),
            Err(RsError::BadErasure { position: 10 })
        );
        assert_eq!(
            code.decode(&mut cw.clone(), &[3, 3]),
            Err(RsError::BadErasure { position: 3 })
        );
        assert_eq!(
            code.decode(&mut cw, &[0, 1, 2, 3, 4]),
            Err(RsError::TooManyErrors)
        );
    }

    #[test]
    fn wrong_lengths_rejected() {
        let code = RsCode::new(10, 6).unwrap();
        assert!(matches!(
            code.encode(&[0; 5]),
            Err(RsError::LengthMismatch {
                expected: 6,
                got: 5
            })
        ));
        let mut short = vec![0u8; 9];
        assert!(matches!(
            code.decode(&mut short, &[]),
            Err(RsError::LengthMismatch {
                expected: 10,
                got: 9
            })
        ));
    }

    #[test]
    fn decode_to_data_strips_parity() {
        let code = RsCode::new(12, 5).unwrap();
        let data = [9, 8, 7, 6, 5];
        let mut cw = code.encode(&data).unwrap();
        cw[2] ^= 0xF0;
        let out = code.decode_to_data(&cw, &[]).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn paper_scale_rate_half_code() {
        // The D-NDP HELLO with mu = 1: l_h = 2 * (l_t + l_id) = 42 bits.
        // At byte granularity: 6 data bytes -> RS(12, 6), correcting 6
        // erasures = half the codeword, i.e. mu/(1+mu) of the bits.
        let code = RsCode::new(12, 6).unwrap();
        let data = *b"HELLO!";
        let cw = code.encode(&data).unwrap();
        let mut corrupted = cw.clone();
        let erasures = [0usize, 2, 4, 6, 8, 10];
        for &p in &erasures {
            corrupted[p] = 0xFF;
        }
        let out = code.decode_to_data(&corrupted, &erasures).unwrap();
        assert_eq!(out, data);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn decode_inverts_encode_under_capacity(
            seed in 0u64..10_000,
            k in 1usize..40,
            parity in 2usize..16,
            data in proptest::collection::vec(0u8..=255, 40),
        ) {
            use rand::{Rng, SeedableRng};
            let n = k + parity;
            prop_assume!(n <= 255);
            let code = RsCode::new(n, k).unwrap();
            let data = &data[..k];
            let clean = code.encode(data).unwrap();
            let mut r = rand::rngs::StdRng::seed_from_u64(seed);
            let nu = r.gen_range(0..=parity / 2);
            let e = r.gen_range(0..=(parity - 2 * nu));
            let mut positions: Vec<usize> = (0..n).collect();
            for i in 0..(nu + e) {
                let j = r.gen_range(i..n);
                positions.swap(i, j);
            }
            let mut cw = clean.clone();
            for &p in &positions[..nu] {
                cw[p] ^= r.gen_range(1..=255u8);
            }
            for &p in &positions[nu..nu + e] {
                cw[p] = r.gen();
            }
            code.decode(&mut cw, &positions[nu..nu + e]).unwrap();
            prop_assert_eq!(&cw[..k], data);
        }
    }
}
