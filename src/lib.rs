//! Umbrella crate for the JR-SND reproduction: one `use jr_snd::...`
//! surface over all workspace crates.
//!
//! The reproduction of *"JR-SND: Jamming-Resilient Secure Neighbor
//! Discovery in Mobile Ad Hoc Networks"* (ICDCS 2011) is split into
//! focused crates; this crate re-exports them for applications and hosts
//! the runnable examples plus the cross-crate integration tests:
//!
//! * [`core`] (`jrsnd`) — the paper's contribution: pre-distribution,
//!   D-NDP, M-NDP, DoS defense, analysis, Monte-Carlo evaluation;
//! * [`dsss`] — the chip-level spread-spectrum physical layer;
//! * [`ecc`] — Reed–Solomon and the (1+μ)-expansion message coding;
//! * [`crypto`] — SHA-256/HMAC/PRF and the simulated identity-based
//!   cryptography;
//! * [`sim`] — the discrete-event MANET simulation substrate;
//! * [`baselines`] — the schemes the paper argues against.
//!
//! # Examples
//!
//! ```
//! use jr_snd::core::montecarlo::run_many;
//! use jr_snd::core::network::ExperimentConfig;
//!
//! let mut config = ExperimentConfig::paper_default();
//! config.params.n = 200;          // shrunk for doc-test speed
//! config.params.field_w = 1581.0; // same density as the paper
//! config.params.field_h = 1581.0;
//! config.params.q = 2;
//! let agg = run_many(&config, 3, 1);
//! assert!(agg.p_jrsnd.mean() > agg.p_dndp.mean() - 1e-9);
//! ```
//!
//! See `examples/` for runnable scenarios (`cargo run --example
//! quickstart`) and `crates/bench/src/bin/repro.rs` for the harness that
//! regenerates every figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use jrsnd as core;
pub use jrsnd_baselines as baselines;
pub use jrsnd_crypto as crypto;
pub use jrsnd_dsss as dsss;
pub use jrsnd_ecc as ecc;
pub use jrsnd_sim as sim;
