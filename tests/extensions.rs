//! Integration tests for the beyond-the-paper extensions: the lifecycle
//! simulation, the multi-antenna trade-off, the ν ≥ 3 approximation, the
//! jammer-strategy space, and PRF-derived pools feeding the chip path.

use jr_snd::core::analysis::{dndp as a_dndp, mndp as a_mndp};
use jr_snd::core::jammer::JammerKind;
use jr_snd::core::montecarlo::run_many;
use jr_snd::core::multiantenna;
use jr_snd::core::network::ExperimentConfig;
use jr_snd::core::params::Params;
use jr_snd::core::predist::derive_code_pool;
use jr_snd::core::timeline::{run_timeline, MobilityModel, TimelineConfig};

fn small_params() -> Params {
    let mut p = Params::table1();
    p.n = 300;
    p.field_w = 1940.0;
    p.field_h = 1940.0;
    p.l = 12;
    p.m = 40;
    p.q = 6;
    p
}

#[test]
fn lifecycle_coverage_beats_single_snapshot_discovery() {
    // The periodic-T loop retries failed pairs every interval, so its
    // steady-state coverage must be at least the one-shot probability.
    let params = small_params();
    let one_shot = run_many(
        &ExperimentConfig {
            params: params.clone(),
            jammer: JammerKind::Reactive,
            dndp: Default::default(),
        },
        4,
        5,
    );
    let mut cfg = TimelineConfig::paper_default();
    cfg.params = params;
    cfg.period = 20.0;
    cfg.duration = 200.0;
    cfg.refresh = 10.0;
    cfg.mobility = MobilityModel::Static;
    let m = run_timeline(&cfg, 5);
    let final_cov = m.coverage.last().map(|&(_, c)| c).unwrap_or(0.0);
    assert!(
        final_cov >= one_shot.p_jrsnd.mean() - 0.02,
        "lifecycle {final_cov} vs one-shot {}",
        one_shot.p_jrsnd.mean()
    );
}

#[test]
fn multiantenna_equivalent_m_beats_baseline_in_simulation() {
    // k = 4 antennas let a node carry ~2x the codes at the same latency;
    // the simulated discovery probability must improve accordingly.
    let base = small_params();
    let m_eq = multiantenna::equivalent_m(&base, 4);
    assert!(m_eq > base.m);
    let mut upgraded = base.clone();
    upgraded.m = m_eq;
    let cfg = |p: Params| ExperimentConfig {
        params: p,
        jammer: JammerKind::Reactive,
        dndp: Default::default(),
    };
    let before = run_many(&cfg(base.clone()), 4, 9);
    let after = run_many(&cfg(upgraded.clone()), 4, 9);
    assert!(
        after.p_dndp.mean() > before.p_dndp.mean() + 0.05,
        "m {} -> {}: P_D {} -> {}",
        base.m,
        m_eq,
        before.p_dndp.mean(),
        after.p_dndp.mean()
    );
    // ...at (approximately) the single-antenna latency budget.
    let t_upgraded = multiantenna::t_dndp_k(&upgraded, 4);
    let t_baseline = a_dndp::t_dndp(&base);
    assert!((t_upgraded - t_baseline).abs() / t_baseline < 0.06);
}

#[test]
fn nu_approximation_saturation_matches_fig5a_shape() {
    // At P_D = 0.2 the approximation must show: near-zero gain from nu = 1,
    // a big jump to nu = 3-4, saturation after nu ~ 6 — Fig. 5(a)'s shape.
    let g = Params::table1().expected_degree();
    let p2 = a_mndp::p_mndp_multi_hop_approx(0.2, g, 2);
    let p4 = a_mndp::p_mndp_multi_hop_approx(0.2, g, 4);
    let p6 = a_mndp::p_mndp_multi_hop_approx(0.2, g, 6);
    let p8 = a_mndp::p_mndp_multi_hop_approx(0.2, g, 8);
    assert!(p4 - p2 > 0.2, "main gain arrives by nu = 4: {p2} -> {p4}");
    assert!(p8 - p6 < 0.02, "saturated past nu = 6: {p6} -> {p8}");
}

#[test]
fn jammer_strategy_ordering_holds_in_simulation() {
    // none >= pulsed(0.5) >= reactive, and sweep ~ random in the long run.
    let params = small_params();
    let run = |kind: JammerKind| {
        run_many(
            &ExperimentConfig {
                params: params.clone(),
                jammer: kind,
                dndp: Default::default(),
            },
            4,
            21,
        )
        .p_dndp
        .mean()
    };
    let none = run(JammerKind::None);
    let pulsed = run(JammerKind::Pulsed { duty: 0.5 });
    let reactive = run(JammerKind::Reactive);
    let random = run(JammerKind::Random);
    let sweep = run(JammerKind::Sweep);
    assert!(none >= pulsed - 0.01, "none {none} vs pulsed {pulsed}");
    assert!(
        pulsed >= reactive - 0.01,
        "pulsed {pulsed} vs reactive {reactive}"
    );
    assert!(
        (sweep - random).abs() < 0.05,
        "sweep {sweep} should track random {random}"
    );
}

#[test]
fn derived_pool_supports_the_chip_level_handshake() {
    // The authority's PRF-derived secret pool plugs straight into the
    // chip-level path: draw two nodes' codes from it (sharing one) and
    // complete a handshake at tau scaled for the short test codes.
    use jr_snd::core::chiplink::{run_handshake, Stage};
    use jr_snd::crypto::ibc::Authority;
    use jr_snd::dsss::code::CodeId;
    let mut params = Params::table1();
    params.n_chips = 256;
    params.tau = 0.30;
    let pool = derive_code_pool(b"deployment master secret", 64, params.n_chips);
    let a_codes = vec![pool.code(CodeId(3)).clone(), pool.code(CodeId(17)).clone()];
    let b_codes = vec![pool.code(CodeId(42)).clone(), pool.code(CodeId(17)).clone()];
    let authority = Authority::from_seed(b"deployment master secret");
    let r = run_handshake(&params, &authority, &a_codes, &b_codes, 1, 1, None, 3);
    assert_eq!(r.stage, Stage::Complete);
    assert!(r.discovered);
}
