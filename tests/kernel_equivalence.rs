//! End-to-end equivalence of the bit-parallel batched scan with the scalar
//! reference implementation it replaced.
//!
//! The `jrsnd_dsss::correlate` kernels promise *bit-identical* results, not
//! merely close ones: integer accumulation is exact in both paths, so every
//! correlation value, every hit offset, every work counter and every
//! decoded frame must match the chip-at-a-time originals (kept under
//! `spread::reference` / `sync::reference`). These tests drive whole
//! receiver scenarios — dead air, multiple frames, same-code jamming,
//! noise — through both paths and require equality.

use jrsnd_dsss::code::SpreadCode;
use jrsnd_dsss::spread::{reference as spread_ref, spread};
use jrsnd_dsss::sync::{reference as sync_ref, scan, scan_all};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Builds a receiver buffer with `frames` spread messages separated by dead
/// air, optional same-code jamming over message tails, and sparse noise.
fn synth_buffer(seed: u64, n: usize, codes: &[SpreadCode], frames: usize) -> Vec<i32> {
    let mut r = rand::rngs::StdRng::seed_from_u64(seed);
    let mut samples: Vec<i32> = Vec::new();
    for _ in 0..frames {
        let lead = r.gen_range(0..2 * n);
        samples.extend(std::iter::repeat_n(0i32, lead));
        let code = &codes[r.gen_range(0..codes.len())];
        let msg: Vec<bool> = (0..8).map(|_| r.gen()).collect();
        let mut levels = spread(&msg, code).to_levels();
        if r.gen_bool(0.3) {
            // Reactive jammer over the tail: large amplitudes, sign flips.
            let start = levels.len() / 2;
            for l in levels[start..].iter_mut() {
                *l = if r.gen() { 1_000_003 } else { -1_000_003 };
            }
        }
        samples.extend(levels);
    }
    samples.extend(std::iter::repeat_n(0i32, n));
    // Sparse background noise on top of everything.
    for s in samples.iter_mut() {
        if r.gen_bool(0.02) {
            *s += r.gen_range(-3..=3);
        }
    }
    samples
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn scan_is_bit_identical_to_reference(
        seed in 0u64..100_000,
        m in 1usize..5,
        frames in 0usize..3,
    ) {
        let n = 256usize;
        let mut cr = rand::rngs::StdRng::seed_from_u64(seed ^ 0xC0DE);
        let codes: Vec<SpreadCode> = (0..m).map(|_| SpreadCode::random(n, &mut cr)).collect();
        let refs: Vec<&SpreadCode> = codes.iter().collect();
        let samples = synth_buffer(seed, n, &codes, frames);

        let fast = scan(&samples, &refs, 0.30);
        let slow = sync_ref::scan(&samples, &refs, 0.30);
        match (fast, slow) {
            (None, None) => {}
            (Some(f), Some(s)) => {
                prop_assert_eq!(f.code_index, s.code_index);
                prop_assert_eq!(f.offset, s.offset);
                prop_assert_eq!(f.correlation.to_bits(), s.correlation.to_bits());
                prop_assert_eq!(f.correlations_computed, s.correlations_computed);
            }
            (f, s) => prop_assert!(false, "hit mismatch: fast={:?} reference={:?}", f, s),
        }
    }

    #[test]
    fn single_window_correlation_is_bit_identical(
        seed in 0u64..100_000,
        n in 1usize..400,
    ) {
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        let code = SpreadCode::random(n, &mut r);
        // Amplitudes up to the i32 limits: a jammed buffer must not change
        // the result by so much as one ULP.
        let window: Vec<i32> = (0..n)
            .map(|_| match r.gen_range(0..4) {
                0 => i32::MIN,
                1 => i32::MAX,
                _ => r.gen_range(-100..=100),
            })
            .collect();
        let fast = jrsnd_dsss::spread::correlate_window(&window, &code);
        let slow = spread_ref::correlate_window(&window, &code);
        prop_assert_eq!(fast.to_bits(), slow.to_bits());
    }
}

/// The hit lists of `scan_all` — every `(code_index, offset, frame)` triple
/// — must be identical to the scalar reference on fixed seeds, so the
/// kernel rewrite is invisible to everything downstream of the receiver.
#[test]
fn scan_all_hit_lists_are_identical_on_fixed_seeds() {
    let n = 256usize;
    for seed in [1u64, 7, 42, 2011, 31_337] {
        let mut cr = rand::rngs::StdRng::seed_from_u64(seed);
        let codes: Vec<SpreadCode> = (0..4).map(|_| SpreadCode::random(n, &mut cr)).collect();
        let refs: Vec<&SpreadCode> = codes.iter().collect();
        let samples = synth_buffer(seed, n, &codes, 4);

        let fast = scan_all(&samples, &refs, 8, 0.30);
        let slow = sync_ref::scan_all(&samples, &refs, 8, 0.30);
        assert_eq!(
            fast, slow,
            "scan_all diverged from reference at seed {seed}"
        );
    }
}

/// Whole receiver scenarios through the chip-medium kernel: the blocked
/// word-parallel `ChipChannel::render` and the fused render→despread path
/// must match the chip-at-a-time channel oracle composed with the
/// materialised despread, bit for bit, on a noisy many-transmission medium.
#[test]
fn channel_render_and_fused_despread_match_reference_end_to_end() {
    use jrsnd_dsss::channel::{self, ChipChannel};
    use jrsnd_dsss::spread::{despread_from_channel, despread_levels};

    let n = 256usize;
    for seed in [3u64, 11, 2011, 90_210] {
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        let codes: Vec<SpreadCode> = (0..6).map(|_| SpreadCode::random(n, &mut r)).collect();
        let mut chan = ChipChannel::new(seed ^ 0xA5A5).with_noise(0.1);
        let msg: Vec<bool> = (0..10).map(|_| r.gen()).collect();
        for (i, code) in codes.iter().enumerate() {
            let amp = if i % 3 == 2 { -5 } else { 1 + i as i32 };
            chan.transmit(r.gen_range(0..3 * n as u64), spread(&msg, code), amp);
        }
        let total = msg.len() * n + 3 * n;

        let packed = chan.render(0, total);
        let scalar = channel::reference::render(&chan, 0, total);
        assert_eq!(packed, scalar, "render diverged from oracle at seed {seed}");

        for code in &codes {
            let fused = despread_from_channel(&chan, 0, code, msg.len(), 0.30);
            let materialised = despread_levels(&packed[..msg.len() * n], code, 0.30);
            assert_eq!(
                fused, materialised,
                "fused despread diverged at seed {seed}"
            );
        }
    }
}
