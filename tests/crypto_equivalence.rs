//! Cross-crate equivalence and known-answer tests for the batched crypto
//! datapath: the multi-lane / precomputed / scratch-reusing fast paths
//! must be byte-identical to the retained `reference` oracles, and both
//! must reproduce the FIPS 180-4 and RFC 4231 vectors at every supported
//! lane count.

use jrsnd_crypto::hmac::{self, mac_lanes, precompute_lanes, HmacKey};
use jrsnd_crypto::prf::{self, prf_expand_bits_into, prf_expand_bits_lanes, PrfScratch};
use jrsnd_crypto::sha256::{self, sha256, sha256_lanes};
use proptest::prelude::*;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// FIPS 180-4 vectors, checked through the scalar fast path, the scalar
/// reference, and every lane width (all lanes carrying the same message).
#[test]
fn sha256_known_answers_at_every_lane_count() {
    let vectors: [(&[u8], &str); 3] = [
        (
            b"abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
        ),
        (
            b"",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        ),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
    ];
    for (msg, want) in vectors {
        assert_eq!(hex(&sha256(msg)), want);
        assert_eq!(hex(&sha256::reference::sha256(msg)), want);
        macro_rules! lanes {
            ($l:literal) => {{
                let digests = sha256_lanes::<$l>([msg; $l]);
                for d in &digests {
                    assert_eq!(hex(d), want, "L = {}", $l);
                }
            }};
        }
        lanes!(1);
        lanes!(2);
        lanes!(4);
        lanes!(8);
    }
}

/// RFC 4231 vectors through the precomputed-key path, the batched key
/// precompute, and every `mac_lanes` width.
#[test]
fn hmac_known_answers_at_every_lane_count() {
    let case1_key = [0x0bu8; 20];
    let vectors: [(&[u8], &[u8], &str); 2] = [
        (
            &case1_key,
            b"Hi There",
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
        ),
        (
            b"Jefe",
            b"what do ya want for nothing?",
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
        ),
    ];
    for (key, msg, want) in vectors {
        let hk = HmacKey::precompute(key);
        assert_eq!(hex(&hk.mac(msg)), want);
        assert_eq!(hex(&hmac::reference::hmac_sha256(key, msg)), want);
        let [batched] = precompute_lanes([key]);
        assert_eq!(hex(&batched.mac(msg)), want);
        macro_rules! lanes {
            ($l:literal) => {{
                let tags = mac_lanes::<$l>([&hk; $l], [msg; $l]);
                for t in &tags {
                    assert_eq!(hex(t), want, "L = {}", $l);
                }
            }};
        }
        lanes!(1);
        lanes!(2);
        lanes!(4);
        lanes!(8);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scalar fast hash == seed reference on arbitrary messages.
    #[test]
    fn sha256_fast_matches_reference(msg in proptest::collection::vec(any::<u8>(), 0..300)) {
        prop_assert_eq!(sha256(&msg), sha256::reference::sha256(&msg));
    }

    /// Four equal-length lanes of distinct messages == per-lane reference.
    #[test]
    fn sha256_lanes_match_reference(
        base in proptest::collection::vec(any::<u8>(), 0..200),
        salt in any::<u8>(),
    ) {
        let msgs: Vec<Vec<u8>> = (0..4u8)
            .map(|l| base.iter().map(|&b| b ^ l.wrapping_mul(salt)).collect())
            .collect();
        let refs: [&[u8]; 4] = std::array::from_fn(|i| msgs[i].as_slice());
        let digests = sha256_lanes::<4>(refs);
        for l in 0..4 {
            prop_assert_eq!(digests[l], sha256::reference::sha256(&msgs[l]));
        }
    }

    /// Precomputed HMAC == seed reference on arbitrary keys and messages.
    #[test]
    fn hmac_fast_matches_reference(
        key in proptest::collection::vec(any::<u8>(), 0..150),
        msg in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        prop_assert_eq!(
            HmacKey::precompute(&key).mac(&msg),
            hmac::reference::hmac_sha256(&key, &msg)
        );
    }

    /// The warm `_into` PRF path leaves exactly the reference bit stream in
    /// the caller's buffer, across reuse at varying lengths.
    #[test]
    fn prf_scratch_bytes_match_reference(
        key in proptest::collection::vec(any::<u8>(), 1..64),
        ctx in proptest::collection::vec(any::<u8>(), 0..32),
        n_bits in 1usize..700,
    ) {
        let hk = HmacKey::precompute(&key);
        let mut out = vec![true; 13]; // stale content must be overwritten
        prf_expand_bits_into(&hk, b"label", &ctx, n_bits, &mut out);
        prop_assert_eq!(&out, &prf::reference::prf_expand_bits(&key, b"label", &ctx, n_bits));
        // Second expansion reusing the same (now warm) buffer.
        prf_expand_bits_into(&hk, b"label2", &ctx, n_bits, &mut out);
        prop_assert_eq!(&out, &prf::reference::prf_expand_bits(&key, b"label2", &ctx, n_bits));
    }

    /// Eight-lane PRF expansion with a reused scratch == per-lane reference.
    #[test]
    fn prf_lanes_match_reference(
        key in proptest::collection::vec(any::<u8>(), 1..64),
        n_bits in 1usize..600,
    ) {
        let hk = HmacKey::precompute(&key);
        let ctxs: Vec<[u8; 4]> = (0..8u32).map(|i| i.to_be_bytes()).collect();
        let ctx_refs: [&[u8]; 8] = std::array::from_fn(|i| ctxs[i].as_slice());
        let mut scratch = PrfScratch::new();
        // Run twice through the same scratch: cold then warm.
        for round in 0..2 {
            let lanes = prf_expand_bits_lanes::<8>([&hk; 8], b"l", ctx_refs, n_bits, &mut scratch);
            for l in 0..8 {
                prop_assert_eq!(
                    &lanes[l],
                    &prf::reference::prf_expand_bits(&key, b"l", &ctxs[l], n_bits),
                    "round {} lane {}", round, l
                );
            }
        }
    }
}
