//! Chip-level validation of the protocol-level abstraction: the full
//! four-message D-NDP handshake executed through every substrate (wire
//! framing → Reed–Solomon → spreading → shared medium → sliding-window
//! sync → de-spread → ECC decode → IBC authentication → session code),
//! with outcomes matching what the Monte-Carlo model assumes.

use jr_snd::core::chiplink::{run_handshake, ChipJammer, Stage};
use jr_snd::core::params::Params;
use jr_snd::crypto::ibc::Authority;
use jr_snd::dsss::code::SpreadCode;
use rand::{rngs::StdRng, SeedableRng};

fn chip_params() -> Params {
    let mut p = Params::table1();
    p.n_chips = 256;
    p.tau = 0.30; // tau scales ~1/sqrt(N); see chiplink docs
    p
}

struct Setup {
    params: Params,
    authority: Authority,
    shared: SpreadCode,
    a_codes: Vec<SpreadCode>,
    b_codes: Vec<SpreadCode>,
}

fn setup(seed: u64) -> Setup {
    let params = chip_params();
    let mut rng = StdRng::seed_from_u64(seed);
    let shared = SpreadCode::random(params.n_chips, &mut rng);
    let a_codes = vec![
        SpreadCode::random(params.n_chips, &mut rng),
        shared.clone(),
        SpreadCode::random(params.n_chips, &mut rng),
    ];
    let b_codes = vec![
        SpreadCode::random(params.n_chips, &mut rng),
        shared.clone(),
        SpreadCode::random(params.n_chips, &mut rng),
    ];
    Setup {
        params,
        authority: Authority::from_seed(b"integration"),
        shared,
        a_codes,
        b_codes,
    }
}

#[test]
fn handshake_succeeds_across_many_seeds() {
    let s = setup(1);
    for seed in 0..10 {
        let r = run_handshake(
            &s.params,
            &s.authority,
            &s.a_codes,
            &s.b_codes,
            1,
            1,
            None,
            seed,
        );
        assert_eq!(r.stage, Stage::Complete, "seed {seed}");
        assert!(r.discovered);
    }
}

#[test]
fn jamming_outcome_matches_protocol_model() {
    // The Monte-Carlo model assumes: non-compromised code => handshake
    // survives; compromised code + reactive full-coverage jam => fails.
    let s = setup(2);
    let mut rng = StdRng::seed_from_u64(99);

    // "Non-compromised": the jammer holds some OTHER code.
    let unrelated = ChipJammer::from_start(SpreadCode::random(s.params.n_chips, &mut rng), 1.0, 1);
    let mut survived = 0;
    for seed in 0..5 {
        if run_handshake(
            &s.params,
            &s.authority,
            &s.a_codes,
            &s.b_codes,
            1,
            1,
            Some(&unrelated),
            1000 + seed,
        )
        .discovered
        {
            survived += 1;
        }
    }
    assert_eq!(survived, 5, "wrong-code jamming must never win");

    // "Compromised": the jammer knows the shared code and covers the
    // whole message at higher power.
    let knowing = ChipJammer::from_start(s.shared.clone(), 1.0, 3);
    let mut killed = 0;
    for seed in 0..5 {
        if !run_handshake(
            &s.params,
            &s.authority,
            &s.a_codes,
            &s.b_codes,
            1,
            1,
            Some(&knowing),
            2000 + seed,
        )
        .discovered
        {
            killed += 1;
        }
    }
    assert_eq!(killed, 5, "correct-code full jamming must always win");
}

#[test]
fn mu_threshold_separates_survivable_from_fatal_jamming() {
    // Below mu/(1+mu) = 50% coverage the ECC recovers; far above it the
    // handshake dies — the bit-level mechanism behind Theorem 1's beta.
    let s = setup(3);
    let below = ChipJammer::from_start(s.shared.clone(), 0.2, 1);
    let r = run_handshake(
        &s.params,
        &s.authority,
        &s.a_codes,
        &s.b_codes,
        1,
        1,
        Some(&below),
        77,
    );
    assert!(
        r.discovered,
        "20% coverage must be absorbed, stage {:?}",
        r.stage
    );

    let above = ChipJammer::from_start(s.shared.clone(), 0.95, 3);
    let r = run_handshake(
        &s.params,
        &s.authority,
        &s.a_codes,
        &s.b_codes,
        1,
        1,
        Some(&above),
        78,
    );
    assert!(!r.discovered, "95% correct-code coverage must be fatal");
}

#[test]
fn gold_codes_support_the_papers_tau_at_full_length() {
    // With pure random codes, tau = 0.15 only holds statistically; a Gold
    // family of period 511 gives a *guaranteed* cross-correlation bound of
    // 33/511 ~ 0.065, so the paper's threshold works deterministically.
    use jr_snd::dsss::gold::GoldFamily;
    let mut params = Params::table1();
    params.n_chips = 511;
    params.tau = 0.15;
    let family = GoldFamily::degree9();
    assert!(family.bound() < params.tau);
    // The shared code leads A's broadcast so the (debug-build) scan cost
    // stays small; B still correlates its whole code set at every offset.
    let a_codes = vec![family.code(20), family.code(10)];
    let b_codes = vec![family.code(40), family.code(20)];
    let authority = Authority::from_seed(b"gold");
    let r = run_handshake(&params, &authority, &a_codes, &b_codes, 0, 1, None, 7);
    assert_eq!(
        r.stage,
        Stage::Complete,
        "gold-code handshake at tau = 0.15"
    );
    assert!(r.discovered);
    // And a jammer holding a *different* Gold code still cannot interfere.
    let jammer = ChipJammer::from_start(family.code(99), 1.0, 1);
    let r = run_handshake(
        &params,
        &authority,
        &a_codes,
        &b_codes,
        0,
        1,
        Some(&jammer),
        8,
    );
    assert!(r.discovered, "stage {:?}", r.stage);
}

#[test]
fn scan_work_scales_with_code_set_like_lambda_predicts() {
    // The lambda = rho*N*m*R gap exists because scan work is proportional
    // to the number of monitored codes m: measure it.
    let s3 = setup(4);
    let mut rng = StdRng::seed_from_u64(5);
    let mut b_many = s3.b_codes.clone();
    for _ in 0..3 {
        b_many.push(SpreadCode::random(s3.params.n_chips, &mut rng));
    }
    let r3 = run_handshake(
        &s3.params,
        &s3.authority,
        &s3.a_codes,
        &s3.b_codes,
        1,
        1,
        None,
        1,
    );
    let r6 = run_handshake(
        &s3.params,
        &s3.authority,
        &s3.a_codes,
        &b_many,
        1,
        1,
        None,
        1,
    );
    assert!(r3.discovered && r6.discovered);
    let ratio = r6.scan_correlations as f64 / r3.scan_correlations as f64;
    assert!(
        (1.5..3.0).contains(&ratio),
        "doubling the code set should roughly double scan work; ratio {ratio}"
    );
}
