//! End-to-end equivalence of the table-driven ECC datapath with the
//! Poly-based reference implementation it replaced.
//!
//! The `jrsnd_ecc` kernels promise *byte-identical* results, not merely
//! equivalent corrections: the LFSR encoder, the incremental-register Chien
//! search, the delta-syndrome recheck and the word-parallel expansion path
//! must reproduce the originals (kept under `rs::reference` /
//! `expand::reference`) bit for bit — on success, on `TooManyErrors`, and
//! in the partially-corrected buffer a failed decode leaves behind. These
//! tests drive randomized corruption scenarios through both paths and
//! require equality, and re-run the fast path with warm scratch to prove
//! reuse never changes an outcome.

use jrsnd_ecc::expand::{self, ExpansionCode, ExpansionScratch};
use jrsnd_ecc::rs::{self, RsCode, RsScratch};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Code shapes worth exercising: tiny, odd, paper-scale rate-1/2, and the
/// classic RS(255,223).
const SHAPES: &[(usize, usize)] = &[(4, 2), (15, 9), (32, 20), (64, 32), (255, 223)];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rs_encode_matches_reference(seed in any::<u64>(), shape in 0usize..SHAPES.len()) {
        let (n, k) = SHAPES[shape];
        let code = RsCode::new(n, k).unwrap();
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<u8> = (0..k).map(|_| r.gen()).collect();
        let fast = code.encode(&data).unwrap();
        let slow = rs::reference::encode(&code, &data).unwrap();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn rs_decode_matches_reference_under_any_corruption(
        seed in any::<u64>(),
        shape in 0usize..SHAPES.len(),
        // Deliberately ranges past capacity so TooManyErrors paths are hit.
        errors in 0usize..20,
        erasures in 0usize..24,
    ) {
        let (n, k) = SHAPES[shape];
        let code = RsCode::new(n, k).unwrap();
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<u8> = (0..k).map(|_| r.gen()).collect();
        let clean = code.encode(&data).unwrap();

        let mut word = clean.clone();
        let mut era: Vec<usize> = Vec::new();
        for _ in 0..erasures.min(n) {
            let p = r.gen_range(0..n);
            if !era.contains(&p) {
                era.push(p);
                word[p] = r.gen();
            }
        }
        let mut err_pos: Vec<usize> = Vec::new();
        for _ in 0..errors.min(n) {
            let p = r.gen_range(0..n);
            if !era.contains(&p) && !err_pos.contains(&p) {
                err_pos.push(p);
                word[p] ^= r.gen_range(1u8..=255);
            }
        }

        let mut fast_buf = word.clone();
        let mut slow_buf = word.clone();
        let mut scratch = RsScratch::new();
        let fast = code.decode_with(&mut fast_buf, &era, &mut scratch);
        let slow = rs::reference::decode(&code, &mut slow_buf, &era);
        // Result AND buffer must match — even a failed decode leaves the
        // same partially-corrected bytes behind.
        prop_assert_eq!(&fast, &slow);
        prop_assert_eq!(&fast_buf, &slow_buf);
        // Recovery of the original is only guaranteed within capacity;
        // beyond it a decode may legally land on a *different* codeword
        // (identically in both paths, which is all equivalence demands).
        if 2 * err_pos.len() + era.len() <= n - k {
            prop_assert!(fast.is_ok());
            prop_assert_eq!(&fast_buf[..k], &clean[..k]);
        }

        // Warm-scratch rerun on the same corrupted input: reuse must be
        // invisible in both the result and the buffer.
        let mut warm_buf = word;
        let warm = code.decode_with(&mut warm_buf, &era, &mut scratch);
        prop_assert_eq!(&warm, &fast);
        prop_assert_eq!(&warm_buf, &fast_buf);
    }

    #[test]
    fn expansion_roundtrip_matches_reference(
        seed in any::<u64>(),
        mu_tenths in 3u32..30,
        msg_bits in 1usize..600,
        jam_fraction in 0.0f64..0.7,
    ) {
        let mu = f64::from(mu_tenths) / 10.0;
        let code = ExpansionCode::new(mu).unwrap();
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        let msg: Vec<bool> = (0..msg_bits).map(|_| r.gen()).collect();

        let mut scratch = ExpansionScratch::new();
        let mut fast_coded = Vec::new();
        code.encode_bits_into(&msg, &mut scratch, &mut fast_coded).unwrap();
        let slow_coded = expand::reference::encode_bits(&code, &msg).unwrap();
        prop_assert_eq!(&fast_coded, &slow_coded);

        // Jam a contiguous burst (flagged erasures) plus sparse silent flips.
        let mut coded = fast_coded.clone();
        let mut erased = vec![false; coded.len()];
        let burst = (coded.len() as f64 * jam_fraction) as usize;
        let start = r.gen_range(0..coded.len());
        for i in 0..burst {
            let p = (start + i) % coded.len();
            erased[p] = true;
            coded[p] = r.gen();
        }
        for _ in 0..r.gen_range(0..4) {
            let p = r.gen_range(0..coded.len());
            coded[p] = !coded[p];
        }

        let mut fast_out = Vec::new();
        let fast = code
            .decode_bits_into(&coded, &erased, msg.len(), &mut scratch, &mut fast_out)
            .map(|()| fast_out.clone());
        let slow = expand::reference::decode_bits(&code, &coded, &erased, msg.len());
        prop_assert_eq!(&fast, &slow);

        // Same decode with warm scratch: identical verdict and bits.
        let mut warm_out = Vec::new();
        let warm = code
            .decode_bits_into(&coded, &erased, msg.len(), &mut scratch, &mut warm_out)
            .map(|()| warm_out.clone());
        prop_assert_eq!(&fast, &warm);
    }

    #[test]
    fn packed_bit_conversion_is_involutive(bits in proptest::collection::vec(any::<bool>(), 0..700)) {
        let mut packed = Vec::new();
        expand::pack_bits_into(&bits, &mut packed);
        prop_assert_eq!(&packed, &expand::bits_to_bytes(&bits));
        let mut back = Vec::new();
        expand::append_bits_from_bytes(&packed, &mut back);
        prop_assert_eq!(&back[..bits.len()], &bits[..]);
    }
}

/// One shared scratch across many decodes of *different* geometries must
/// behave exactly like a fresh scratch per call. This is the determinism
/// guarantee the protocol layer (FrameCodec) relies on.
#[test]
fn scratch_reuse_across_geometries_is_invisible() {
    let mut r = rand::rngs::StdRng::seed_from_u64(0xECC5);
    let mut shared = ExpansionScratch::new();
    for trial in 0..60 {
        let mu = [0.5, 1.0, 2.0][trial % 3];
        let len = r.gen_range(1..400);
        let code = ExpansionCode::new(mu).unwrap();
        let msg: Vec<bool> = (0..len).map(|_| r.gen()).collect();

        let mut coded_shared = Vec::new();
        code.encode_bits_into(&msg, &mut shared, &mut coded_shared)
            .unwrap();
        let mut fresh = ExpansionScratch::new();
        let mut coded_fresh = Vec::new();
        code.encode_bits_into(&msg, &mut fresh, &mut coded_fresh)
            .unwrap();
        assert_eq!(coded_shared, coded_fresh, "trial {trial}");

        let mut coded = coded_shared;
        let mut erased = vec![false; coded.len()];
        let burst = coded.len() * 2 / 5;
        for (i, (c, e)) in coded.iter_mut().zip(erased.iter_mut()).enumerate() {
            if i < burst {
                *c = r.gen();
                *e = true;
            }
        }
        let mut out_shared = Vec::new();
        let res_shared = code.decode_bits_into(&coded, &erased, len, &mut shared, &mut out_shared);
        let mut out_fresh = Vec::new();
        let res_fresh = code.decode_bits_into(&coded, &erased, len, &mut fresh, &mut out_fresh);
        assert_eq!(res_shared, res_fresh, "trial {trial}");
        assert_eq!(out_shared, out_fresh, "trial {trial}");
        if res_shared.is_ok() {
            assert_eq!(out_shared, msg, "trial {trial}");
        }
    }
}

/// The in-place data decode agrees with the copying one and with the
/// reference pipeline, including which `k` bytes it exposes.
#[test]
fn in_place_decode_agrees_with_copying_decode() {
    let code = RsCode::new(255, 223).unwrap();
    let mut r = rand::rngs::StdRng::seed_from_u64(7);
    let mut scratch = RsScratch::new();
    for _ in 0..20 {
        let data: Vec<u8> = (0..223).map(|_| r.gen()).collect();
        let mut word = code.encode(&data).unwrap();
        let mut era = Vec::new();
        for _ in 0..20 {
            let p = r.gen_range(0..255);
            if !era.contains(&p) {
                era.push(p);
                word[p] = r.gen();
            }
        }
        let copied = code.decode_to_data(&word, &era).unwrap();
        let in_place = code
            .decode_data_in_place(&mut word, &era, &mut scratch)
            .unwrap();
        assert_eq!(in_place, &copied[..]);
        assert_eq!(in_place, &data[..]);
    }
}
