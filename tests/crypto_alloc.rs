//! Proves the steady-state crypto datapath is allocation-free.
//!
//! A counting global allocator wraps `System`; after one warm-up pass
//! populates the `PrfScratch` buffers, the precomputed `HmacKey` states,
//! and the caller-owned output vectors, further MAC / PRF / session-code
//! derivations of the same shapes must perform **zero** heap allocations.
//! This lives outside `jrsnd-crypto` because the crate itself forbids
//! `unsafe`, which a `GlobalAlloc` impl requires.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use jrsnd_crypto::hmac::{mac_lanes, HmacKey};
use jrsnd_crypto::ibc::{Authority, NodeId};
use jrsnd_crypto::nonce::Nonce;
use jrsnd_crypto::prf::prf_expand_bits_into;
use jrsnd_crypto::session::derive_session_code_with;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap allocations it performed.
fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn precomputed_mac_is_allocation_free() {
    let key = HmacKey::precompute(b"pair key material");
    let msg = [0xC3u8; 77];
    // Warm-up: the lazily-initialised metric counters allocate once.
    let mut sink = key.mac(&msg);
    let allocs = count_allocs(|| {
        for _ in 0..50 {
            // Chain each tag into the next input so neither call is elided.
            sink = key.mac(&sink);
            sink = key.mac_parts(&[b"f_K", &sink, b"tail"]);
        }
    });
    assert_eq!(allocs, 0, "steady-state MACs must not allocate");
    assert_ne!(sink, [0u8; 32]);
}

#[test]
fn lane_parallel_macs_are_allocation_free() {
    let keys: Vec<HmacKey> = (0..8u8).map(|i| HmacKey::precompute(&[i; 16])).collect();
    let msgs = [[0x5Au8; 64]; 8];
    let key_refs: [&HmacKey; 8] = std::array::from_fn(|i| &keys[i]);
    let msg_refs: [&[u8]; 8] = std::array::from_fn(|i| msgs[i].as_slice());
    let mut tags = mac_lanes(key_refs, msg_refs); // warm-up (metrics)
    let allocs = count_allocs(|| {
        for _ in 0..20 {
            tags = mac_lanes(key_refs, msg_refs);
        }
    });
    assert_eq!(allocs, 0, "mac_lanes must not allocate");
    assert_ne!(tags[0], tags[1]);
}

#[test]
fn warm_prf_expansion_is_allocation_free() {
    let key = HmacKey::precompute(b"prf key");
    let mut out = Vec::new();
    // Warm-up twice: the first call sizes the output buffer, the second
    // takes the warm branch and initialises its lazy metric counter.
    prf_expand_bits_into(&key, b"label", b"ctx", 512, &mut out);
    prf_expand_bits_into(&key, b"label", b"ctx", 512, &mut out);
    let allocs = count_allocs(|| {
        for round in 0..50u8 {
            prf_expand_bits_into(&key, b"label", &[round], 512, &mut out);
        }
    });
    assert_eq!(allocs, 0, "warm PRF expansion must not allocate");
    assert_eq!(out.len(), 512);
}

#[test]
fn warm_session_code_derivation_is_allocation_free() {
    let authority = Authority::from_seed(b"alloc-test");
    let shared = authority.issue(NodeId(1)).shared_key(NodeId(2));
    let key = HmacKey::precompute(shared.as_bytes());
    let mut code = Vec::new();
    // Two warm-ups: buffer sizing, then the warm branch's lazy counter.
    derive_session_code_with(
        &key,
        Nonce::from_value(1),
        Nonce::from_value(2),
        512,
        &mut code,
    );
    derive_session_code_with(
        &key,
        Nonce::from_value(1),
        Nonce::from_value(2),
        512,
        &mut code,
    );
    let allocs = count_allocs(|| {
        for round in 0..50u32 {
            derive_session_code_with(
                &key,
                Nonce::from_value(round),
                Nonce::from_value(round + 1),
                512,
                &mut code,
            );
        }
    });
    assert_eq!(allocs, 0, "warm session-code derivation must not allocate");
    assert_eq!(code.len(), 512);
}
