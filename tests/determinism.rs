//! Replayability: every layer of the reproduction is a pure function of
//! its seed — the property that makes "average of 100 seeded runs"
//! meaningful and every figure regenerable bit-for-bit.

use jr_snd::core::montecarlo::{run_many, run_many_with_threads};
use jr_snd::core::network::{run_once, ExperimentConfig};
use jr_snd::core::params::Params;
use jr_snd::core::predist::CodeAssignment;
use jr_snd::sim::rng::SimRng;
use rand::SeedableRng;

fn config() -> ExperimentConfig {
    let mut c = ExperimentConfig::paper_default();
    c.params.n = 250;
    c.params.field_w = 1770.0;
    c.params.field_h = 1770.0;
    c.params.l = 10;
    c.params.m = 40;
    c.params.q = 4;
    c
}

#[test]
fn run_once_replays_exactly() {
    let cfg = config();
    let a = run_once(&cfg, 12345);
    let b = run_once(&cfg, 12345);
    assert_eq!(a.physical_pairs, b.physical_pairs);
    assert_eq!(a.dndp_pairs, b.dndp_pairs);
    assert_eq!(a.mndp_pairs, b.mndp_pairs);
    assert_eq!(a.mndp_capable_pairs, b.mndp_capable_pairs);
    assert_eq!(a.mndp_epochs, b.mndp_epochs);
    assert_eq!(a.dndp_latency.mean(), b.dndp_latency.mean());
    assert_eq!(a.mndp_latency.mean(), b.mndp_latency.mean());
}

#[test]
fn run_many_is_schedule_independent() {
    // The parallel driver must produce the same aggregate regardless of
    // how the OS schedules its worker threads: run it twice.
    let cfg = config();
    let a = run_many(&cfg, 8, 777);
    let b = run_many(&cfg, 8, 777);
    assert_eq!(a.p_dndp.mean(), b.p_dndp.mean());
    assert_eq!(a.p_jrsnd.variance(), b.p_jrsnd.variance());
    assert_eq!(a.t_dndp.mean(), b.t_dndp.mean());
    assert_eq!(a.runs(), b.runs());
}

#[test]
fn run_many_is_bitwise_identical_across_thread_counts() {
    // The static seed sharding in `run_many` guarantees the aggregate is a
    // pure function of (config, reps, base_seed) — the worker count must
    // not leak into a single output bit. JSON via exact shortest-roundtrip
    // f64 formatting makes this a byte-level assertion.
    let cfg = config();
    let reference = run_many_with_threads(&cfg, 7, 424_242, Some(1)).to_json();
    for threads in [2usize, 4] {
        let parallel = run_many_with_threads(&cfg, 7, 424_242, Some(threads)).to_json();
        assert_eq!(
            reference, parallel,
            "aggregate JSON diverged at {threads} worker threads"
        );
    }
    // Repeated invocation at the same thread count is the identity too.
    let again = run_many_with_threads(&cfg, 7, 424_242, Some(4)).to_json();
    assert_eq!(reference, again);
}

#[test]
fn predistribution_replays_and_seeds_differ() {
    let params = config().params;
    let gen = |seed: u64| {
        let mut rng = SimRng::seed_from_u64(seed);
        CodeAssignment::generate(&params, &mut rng)
    };
    let a = gen(5);
    let b = gen(5);
    for v in 0..params.n {
        assert_eq!(a.codes_of(v), b.codes_of(v));
    }
    let c = gen(6);
    assert!((0..params.n).any(|v| a.codes_of(v) != c.codes_of(v)));
}

#[test]
fn different_seeds_give_statistically_distinct_runs() {
    let cfg = config();
    let outcomes: Vec<usize> = (0..6).map(|s| run_once(&cfg, s).dndp_pairs).collect();
    let all_same = outcomes.windows(2).all(|w| w[0] == w[1]);
    assert!(
        !all_same,
        "six different seeds produced identical runs: {outcomes:?}"
    );
}

#[test]
fn chip_level_handshake_replays() {
    use jr_snd::core::chiplink::run_handshake;
    use jr_snd::crypto::ibc::Authority;
    use jr_snd::dsss::code::SpreadCode;
    use rand::rngs::StdRng;
    let mut params = Params::table1();
    params.n_chips = 256;
    params.tau = 0.30;
    let mut rng = StdRng::seed_from_u64(9);
    let shared = SpreadCode::random(params.n_chips, &mut rng);
    let a_codes = vec![shared.clone(), SpreadCode::random(params.n_chips, &mut rng)];
    let b_codes = vec![SpreadCode::random(params.n_chips, &mut rng), shared];
    let authority = Authority::from_seed(b"replay");
    let r1 = run_handshake(&params, &authority, &a_codes, &b_codes, 0, 1, None, 42);
    let r2 = run_handshake(&params, &authority, &a_codes, &b_codes, 0, 1, None, 42);
    assert_eq!(r1, r2);
}
