//! Theory-versus-simulation bracketing (Section VI-A against VI-B):
//! Theorem 1's bounds must bracket the measured discovery probability,
//! Theorem 2's latency must match the sampled timeline, and Theorem 3's
//! bound must sit at or below the measured relay probability.

use jr_snd::core::analysis::{dndp as t1, mndp as t3, predist};
use jr_snd::core::dndp::DndpConfig;
use jr_snd::core::jammer::JammerKind;
use jr_snd::core::montecarlo::run_many;
use jr_snd::core::network::ExperimentConfig;
use jr_snd::core::params::Params;

/// A 500-node deployment at the paper's density so degree-based formulas
/// stay comparable, with (l, m) scaled to keep the same sharing behavior.
fn config(q: usize, jammer: JammerKind) -> ExperimentConfig {
    let mut params = Params::table1();
    params.n = 500;
    params.field_w = 2500.0;
    params.field_h = 2500.0;
    params.l = 10; // keeps (l-1)/(n-1) near Table I's ratio
    params.m = 100;
    params.q = q;
    ExperimentConfig {
        params,
        jammer,
        dndp: DndpConfig::default(),
    }
}

#[test]
fn theorem1_brackets_simulation_across_q() {
    for q in [0usize, 5, 15, 30] {
        let reactive_cfg = config(q, JammerKind::Reactive);
        let random_cfg = config(q, JammerKind::Random);
        let reactive = run_many(&reactive_cfg, 6, 100);
        let random = run_many(&random_cfg, 6, 100);
        let lower = t1::p_dndp_lower(&reactive_cfg.params);
        let upper = t1::p_dndp_upper(&random_cfg.params);
        let slack = 0.03 + reactive.p_dndp.ci95_half_width() + random.p_dndp.ci95_half_width();
        assert!(
            lower <= reactive.p_dndp.mean() + slack,
            "q={q}: lower bound {lower} above reactive sim {}",
            reactive.p_dndp.mean()
        );
        assert!(
            reactive.p_dndp.mean() <= random.p_dndp.mean() + slack,
            "q={q}: reactive {} beat random {}",
            reactive.p_dndp.mean(),
            random.p_dndp.mean()
        );
        assert!(
            random.p_dndp.mean() <= upper + slack,
            "q={q}: random sim {} above upper bound {upper}",
            random.p_dndp.mean()
        );
    }
}

#[test]
fn theorem2_latency_matches_sampled_timeline() {
    let cfg = config(5, JammerKind::Reactive);
    let agg = run_many(&cfg, 6, 7);
    let theory = t1::t_dndp(&cfg.params);
    let measured = agg.t_dndp.mean();
    assert!(
        (measured - theory).abs() / theory < 0.05,
        "measured {measured} vs Theorem 2 {theory}"
    );
}

#[test]
fn theorem3_bound_holds_for_measured_relay_probability() {
    // Theorem 3 is a lower bound on P_M given P_D; evaluate it with the
    // *measured* P_D and degree so geometry assumptions line up.
    let cfg = config(15, JammerKind::Reactive);
    let agg = run_many(&cfg, 6, 31);
    let bound = t3::p_mndp_two_hop(agg.p_dndp.mean(), agg.degree.mean());
    let measured = agg.p_mndp.mean();
    // Border effects and finite sampling leave a small gap either way.
    assert!(
        measured >= bound - 0.10,
        "measured P_M {measured} far below the Theorem 3 bound {bound}"
    );
}

#[test]
fn alpha_matches_empirical_compromise_rate() {
    use jr_snd::core::predist::CodeAssignment;
    use jr_snd::sim::rng::SimRng;
    use rand::SeedableRng;
    let mut params = Params::table1();
    params.n = 400;
    params.l = 20;
    params.m = 40;
    params.q = 12;
    let mut total_frac = 0.0;
    let runs = 20;
    for seed in 0..runs {
        let mut rng = SimRng::seed_from_u64(seed);
        let a = CodeAssignment::generate(&params, &mut rng);
        let compromised_nodes: Vec<usize> = (0..params.q).collect();
        let frac = a.compromised_codes(&compromised_nodes).len() as f64 / a.pool_size() as f64;
        total_frac += frac;
    }
    let measured = total_frac / runs as f64;
    let alpha = predist::alpha(&params);
    assert!(
        (measured - alpha).abs() < 0.02,
        "empirical {measured} vs Eq. (2) alpha {alpha}"
    );
}

#[test]
fn multi_hop_approximation_tracks_simulation_shape() {
    // The paper could not give a closed form for nu >= 3; our branching
    // approximation must track the simulated P_M curve's shape: monotone,
    // saturating, within a coarse band of the measurement.
    let mut cfg = config(30, JammerKind::Reactive); // drive P_D low
    let mut measured = Vec::new();
    let mut approx = Vec::new();
    for nu in [2usize, 4, 6] {
        cfg.params.nu = nu;
        let agg = run_many(&cfg, 5, 50);
        measured.push(agg.p_mndp.mean());
        approx.push(t3::p_mndp_multi_hop_approx(
            agg.p_dndp.mean(),
            agg.degree.mean(),
            nu,
        ));
    }
    for i in 0..measured.len() {
        assert!(
            (measured[i] - approx[i]).abs() < 0.25,
            "nu band {i}: measured {} vs approx {}",
            measured[i],
            approx[i]
        );
    }
    // Both increase in nu.
    assert!(measured.windows(2).all(|w| w[1] >= w[0] - 0.02));
    assert!(approx.windows(2).all(|w| w[1] >= w[0] - 1e-12));
}

#[test]
fn theorem4_latency_brackets_measured_mndp_means() {
    // Simulated M-NDP latencies use the actual hop counts, so the mean
    // must sit between the 2-hop value and the nu-hop worst case.
    let mut cfg = config(15, JammerKind::Reactive);
    cfg.params.nu = 4;
    let agg = run_many(&cfg, 6, 77);
    let g = agg.degree.mean();
    let t2 = t3::t_mndp(&cfg.params, 2, g);
    let t4 = t3::t_mndp(&cfg.params, 4, g);
    let measured = agg.t_mndp.mean();
    assert!(
        measured >= t2 * 0.9 && measured <= t4 * 1.1,
        "measured {measured} outside [{t2}, {t4}]"
    );
}
