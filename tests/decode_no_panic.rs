//! "Arbitrary bytes never panic": every decoder reachable from the radio
//! is fed adversarial bit/byte buffers and must return a typed error —
//! never unwind. This is the contract behind the `DecodeError` taxonomy
//! (see `jrsnd::decode`): a jammer or fault injector controls every bit
//! a receiver parses, so a panicking parser is a remote crash.
//!
//! Case count defaults to a CI-friendly 64 per property; the nightly job
//! raises it via the `PROPTEST_CASES` environment variable.

use jr_snd::core::handshake::{Initiator, Responder};
use jr_snd::core::messages::{BitReader, FrameCodec, WireConfig};
use jr_snd::core::mndp::{closing_hello_heard, closing_hello_heard_coded};
use jr_snd::core::params::Params;
use jr_snd::crypto::ibc::{Authority, NodeId};
use jr_snd::crypto::nonce::Nonce;
use jr_snd::crypto::session::try_derive_session_code;
use jr_snd::dsss::code::{CodeId, SpreadCode};
use jr_snd::ecc::expand::ExpansionCode;
use jr_snd::sim::rng::SimRng;
use proptest::collection::vec;
use proptest::prelude::*;
use rand::SeedableRng;

/// Per-property case budget: 64 by default, raised on the nightly CI run
/// through `PROPTEST_CASES`.
fn cases() -> ProptestConfig {
    let n = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    ProptestConfig::with_cases(n)
}

fn wire() -> WireConfig {
    WireConfig::from_params(&Params::table1())
}

proptest! {
    #![proptest_config(cases())]

    #[test]
    fn wire_parsers_never_panic(bits in vec(any::<bool>(), 0..400)) {
        let w = wire();
        let _ = w.decode_hello(&bits);
        let _ = w.decode_auth(&bits);
        let _ = w.decode_request(&bits);
        let _ = w.decode_response(&bits);
        let mut r = BitReader::new(&bits);
        let _ = w.decode_signature(&mut r);
    }

    #[test]
    fn bit_reader_never_panics(bits in vec(any::<bool>(), 0..128), width in 0usize..80) {
        let mut r = BitReader::new(&bits);
        let _ = r.read(width);
        let _ = r.read_bits(width);
    }

    #[test]
    fn ecc_decode_never_panics(
        coded in vec(any::<bool>(), 0..600),
        erased in vec(any::<bool>(), 0..600),
        msg_bits in 0usize..300,
        mu_tenths in 0u32..40,
    ) {
        // Valid and invalid mu alike: ExpansionCode::new must reject bad
        // expansion factors, and a constructed code must reject
        // mismatched buffers without unwinding.
        let mu = f64::from(mu_tenths) / 10.0;
        if let Ok(code) = ExpansionCode::new(mu) {
            let _ = code.decode_bits(&coded, &erased, msg_bits);
            let mut codec = FrameCodec::new(mu).unwrap();
            let mut out = Vec::new();
            let _ = codec.decode_into(&coded, &erased, msg_bits, &mut out);
        }
    }

    #[test]
    fn handshake_state_machines_never_panic(
        frame1 in vec(any::<bool>(), 0..300),
        frame2 in vec(any::<bool>(), 0..300),
        seed in 0u64..1_000,
    ) {
        let authority = Authority::from_seed(b"decode-no-panic");
        let w = wire();
        let mut rng = SimRng::seed_from_u64(seed);
        let mut a = Initiator::new(authority.issue(NodeId(1)), w, 64, &mut rng);
        let mut b = Responder::new(authority.issue(NodeId(2)), w, 64, 8, &mut rng);
        // Feed garbage at every state the machines can reach: the typed
        // HandshakeError path must absorb it all.
        let _ = a.on_confirm(&frame1, CodeId(3));
        let _ = a.on_auth_b(&frame2);
        let _ = b.on_hello(&frame1, CodeId(3));
        let _ = b.on_auth_a(&frame2);
        // And again after a real HELLO moved the responder forward.
        let mut a2 = Initiator::new(authority.issue(NodeId(1)), w, 64, &mut rng);
        let mut b2 = Responder::new(authority.issue(NodeId(2)), w, 64, 8, &mut rng);
        if let Ok(confirm) = b2.on_hello(&a2.hello_frame(), CodeId(3)) {
            let _ = a2.on_confirm(&frame1, CodeId(3));
            let _ = b2.on_auth_a(&frame2);
            let _ = a2.on_confirm(&confirm, CodeId(3));
            let _ = b2.on_auth_a(&frame1);
        }
    }

    #[test]
    fn session_code_derivation_never_panics(n_chips in 0usize..2_000, seed in 0u64..1_000) {
        let authority = Authority::from_seed(b"decode-no-panic");
        let key = authority.shared_key(NodeId(1), NodeId(2));
        let mut rng = SimRng::seed_from_u64(seed);
        let n_a = Nonce::random(&mut rng, 32);
        let n_b = Nonce::random(&mut rng, 32);
        let derived = try_derive_session_code(&key, n_a, n_b, n_chips);
        prop_assert_eq!(derived.is_err(), n_chips == 0);
    }

    #[test]
    fn mndp_closing_helpers_never_panic(
        hello_len in 0usize..40,
        n_chips in 1usize..96,
        mismatched in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let hello: Vec<bool> = (0..hello_len).map(|i| i % 3 == 0).collect();
        let session = SpreadCode::random(n_chips, &mut rng);
        let cand_len = if mismatched { n_chips + 1 } else { n_chips };
        let c0 = SpreadCode::random(cand_len, &mut rng);
        let c1 = SpreadCode::random(cand_len, &mut rng);
        let candidates: Vec<&SpreadCode> = vec![&c0, &c1];
        let r = closing_hello_heard(&hello, &session, &candidates, None, 0.0, seed, 0.5);
        let mut codec = FrameCodec::new(Params::table1().mu).unwrap();
        let rc = closing_hello_heard_coded(
            &hello, &session, &candidates, None, 0.0, seed, 0.5, &mut codec,
        );
        // Degenerate inputs must surface as typed errors, not panics.
        if hello_len == 0 || mismatched {
            prop_assert!(r.is_err());
            prop_assert!(rc.is_err());
        }
    }

    #[test]
    fn packed_wire_parsers_never_panic(bits in vec(any::<bool>(), 0..600)) {
        // The packed TLV parsers see whatever the despreader produced —
        // every bit is attacker-controlled, so arbitrary streams must come
        // back as typed WireError values, never unwind.
        let w = wire();
        let _ = jr_snd::core::wire::parse_hello_bools(&w, &bits);
        let _ = jr_snd::core::wire::parse_auth_bools(&w, &bits);
        let _ = jr_snd::core::wire::parse_request_bools(&w, &bits);
        let _ = jr_snd::core::wire::parse_response_bools(&w, &bits);
    }

    #[test]
    fn packed_wire_bytes_never_panic(bytes in vec(any::<u8>(), 0..80), extra in 0usize..16) {
        // Byte-level entry: a hostile length claim larger than the buffer
        // must be rejected by from_bytes; an in-range one must parse or
        // error cleanly through a raw cursor.
        use jr_snd::core::wire::{BitCursor, PackedBits};
        let w = wire();
        let claimed = bytes.len() * 8 + extra;
        if let Ok(p) = PackedBits::from_bytes(&bytes, claimed) {
            let _ = jr_snd::core::wire::parse_hello(&w, &mut BitCursor::new(&p));
            let _ = jr_snd::core::wire::parse_auth(&w, &mut BitCursor::new(&p));
            let _ = jr_snd::core::wire::parse_request(&w, &mut BitCursor::new(&p));
            let _ = jr_snd::core::wire::parse_response(&w, &mut BitCursor::new(&p));
        }
    }

    #[test]
    fn corrupted_packed_frames_never_panic(
        flip in 0usize..100,
        truncate in 0usize..100,
        id in 0u32..0x1_0000,
    ) {
        // Start from a VALID packed frame, then jam it: flip one bit and
        // truncate the tail. Parsers must reject or reinterpret, never
        // panic — and a clean frame must still round-trip.
        use jr_snd::core::messages::MessageKind;
        use jr_snd::core::wire::{parse_hello_bools, hello_frame_bools};
        let w = wire();
        let clean = hello_frame_bools(&w, MessageKind::Hello, NodeId(id)).unwrap();
        prop_assert_eq!(
            parse_hello_bools(&w, &clean).unwrap(),
            (MessageKind::Hello, NodeId(id))
        );
        let mut jammed = clean.clone();
        let i = flip % jammed.len();
        jammed[i] = !jammed[i];
        jammed.truncate(truncate % (jammed.len() + 1));
        let _ = parse_hello_bools(&w, &jammed);
    }
}
