//! End-to-end shape tests: every qualitative claim of the paper's
//! evaluation (DESIGN.md §4 "shape expectations"), asserted on shrunken
//! but density-faithful networks.

use jr_snd::core::analysis::{dndp as a_dndp, mndp as a_mndp};
use jr_snd::core::dndp::DndpConfig;
use jr_snd::core::jammer::JammerKind;
use jr_snd::core::montecarlo::{run_many, sweep};
use jr_snd::core::network::ExperimentConfig;
use jr_snd::core::params::Params;

fn base() -> ExperimentConfig {
    let mut params = Params::table1();
    params.n = 500;
    params.field_w = 2500.0;
    params.field_h = 2500.0;
    params.l = 10;
    params.m = 100;
    params.q = 5;
    ExperimentConfig {
        params,
        jammer: JammerKind::Reactive,
        dndp: DndpConfig::default(),
    }
}

#[test]
fn shape1_probabilities_increase_with_m() {
    let pts = sweep(&base(), &[20.0, 60.0, 120.0], 4, 1, |p, v| p.m = v as usize);
    let pd: Vec<f64> = pts.iter().map(|p| p.agg.p_dndp.mean()).collect();
    let pj: Vec<f64> = pts.iter().map(|p| p.agg.p_jrsnd.mean()).collect();
    assert!(pd[0] < pd[1] && pd[1] < pd[2], "P_D not increasing: {pd:?}");
    assert!(
        pj[0] <= pj[1] + 0.01 && pj[1] <= pj[2] + 0.01,
        "P not increasing: {pj:?}"
    );
}

#[test]
fn shape2_latency_quadratic_and_crossover() {
    let params = Params::table1();
    // T_D at m=100 < 2 s (the paper's headline latency claim).
    assert!(a_dndp::t_dndp(&params) < 2.0);
    // Quadratic: doubling m roughly quadruples the identification term.
    let mut p200 = params.clone();
    p200.m = 200;
    let ratio = a_dndp::t_dndp_identification(&p200) / a_dndp::t_dndp_identification(&params);
    assert!((3.5..4.5).contains(&ratio), "ratio {ratio}");
    // Crossover: T_D < T_M at m = 40, T_D > T_M at m = 100 (Fig. 2b).
    let g = params.expected_degree();
    let mut p40 = params.clone();
    p40.m = 40;
    assert!(a_dndp::t_dndp(&p40) < a_mndp::t_mndp(&p40, 2, g));
    assert!(a_dndp::t_dndp(&params) > a_mndp::t_mndp(&params, 2, g));
}

#[test]
fn shape3_unimodal_in_l() {
    // At fixed q, P_D rises from tiny l, peaks, then declines as each
    // compromise exposes codes shared by more nodes (Fig. 3a). Use the
    // analytic form at paper scale for the exact peak, and simulation for
    // the qualitative rise-fall.
    let mut last = 0.0;
    let mut peak_l = 0usize;
    for l in (5..=300).step_by(5) {
        let mut p = Params::table1();
        p.l = l;
        let v = a_dndp::p_dndp_lower(&p);
        if v > last {
            peak_l = l;
            last = v;
        }
    }
    assert!(
        (60..=160).contains(&peak_l),
        "analytic peak at l = {peak_l}, paper shows ~100"
    );
    // Simulated check on the shrunken network: middle l beats both ends.
    // The peak position scales with the compromise fraction, so use the
    // same 5% rate the paper's q = 100 regime corresponds to.
    let mut cfg = base();
    cfg.params.q = 25;
    let pts = sweep(&cfg, &[3.0, 50.0, 400.0], 4, 3, |p, v| p.l = v as usize);
    let ps: Vec<f64> = pts.iter().map(|p| p.agg.p_dndp.mean()).collect();
    assert!(ps[1] > ps[0] && ps[1] > ps[2], "not unimodal: {ps:?}");
}

#[test]
fn shape4_unimodal_in_n_and_density_helps_mndp() {
    // Analytic P_D vs n at paper scale: rises then falls (Fig. 3b).
    let mut values = Vec::new();
    for n in [100usize, 250, 500, 1000, 2000, 4000, 8000] {
        let mut p = Params::table1();
        p.n = n;
        values.push(a_dndp::p_dndp_lower(&p));
    }
    let max_idx = values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert!(
        max_idx > 0 && max_idx < values.len() - 1,
        "P_D(n) monotone: {values:?}"
    );
}

#[test]
fn shape5_everything_decreases_with_q() {
    let pts = sweep(&base(), &[0.0, 10.0, 30.0], 4, 5, |p, v| p.q = v as usize);
    let pd: Vec<f64> = pts.iter().map(|p| p.agg.p_dndp.mean()).collect();
    let pj: Vec<f64> = pts.iter().map(|p| p.agg.p_jrsnd.mean()).collect();
    assert!(pd[0] > pd[1] && pd[1] > pd[2], "P_D not decreasing: {pd:?}");
    assert!(
        pj[0] >= pj[2],
        "P(JR-SND) should not improve with compromise: {pj:?}"
    );
}

#[test]
fn shape6_nu_rescues_heavily_compromised_networks() {
    let mut cfg = base();
    cfg.params.q = 30; // drive P_D low
    let pts = sweep(&cfg, &[1.0, 2.0, 6.0], 4, 7, |p, v| p.nu = v as usize);
    let pj: Vec<f64> = pts.iter().map(|p| p.agg.p_jrsnd.mean()).collect();
    assert!(pj[0] < pj[1] && pj[1] < pj[2], "nu does not help: {pj:?}");
    // And the latency cost grows with nu (Fig. 5b).
    let g = cfg.params.expected_degree();
    assert!(a_mndp::t_mndp(&cfg.params, 6, g) > a_mndp::t_mndp(&cfg.params, 2, g));
}

#[test]
fn shape7_reactive_weaker_or_equal_discovery_than_random() {
    let mut reactive = base();
    reactive.params.q = 20;
    let mut random = reactive.clone();
    random.jammer = JammerKind::Random;
    let r1 = run_many(&reactive, 6, 9);
    let r2 = run_many(&random, 6, 9);
    assert!(
        r1.p_dndp.mean() <= r2.p_dndp.mean() + 0.02,
        "reactive {} vs random {}",
        r1.p_dndp.mean(),
        r2.p_dndp.mean()
    );
}

#[test]
fn shape8_dos_damage_capped_under_jrsnd() {
    use jr_snd::core::predist::CodeAssignment;
    use jr_snd::core::revocation::{simulate_dos, verification_cap_per_code};
    use jr_snd::sim::rng::SimRng;
    use rand::SeedableRng;
    let mut params = Params::table1();
    params.n = 200;
    params.l = 20;
    params.m = 30;
    params.q = 4;
    let mut rng = SimRng::seed_from_u64(1);
    let assignment = CodeAssignment::generate(&params, &mut rng);
    let compromised: Vec<usize> = (0..params.q).collect();
    let out = simulate_dos(&params, &assignment, &compromised, 1_000_000);
    let n_codes = assignment.compromised_codes(&compromised).len() as u64;
    assert!(out.verifications <= n_codes * verification_cap_per_code(&params));
    // The public baseline with the same budget is orders of magnitude worse.
    let public =
        jr_snd::baselines::ufh::dos_verifications(params.n - params.q, 1_000_000 * n_codes);
    assert!(public > 1000 * out.verifications);
}
