//! Reproduces the paper's Fig. 1 M-NDP walkthrough: nodes A–H, where A
//! and B are physical neighbors that failed D-NDP, C is their common
//! logical neighbor, and G/H sit two logical hops away but outside A's
//! radio range (the false-positive overhead the GPS filter removes).

use jr_snd::core::mndp::{initiate, GpsFilter};
use jr_snd::core::node::{DiscoveryKind, Node};
use jr_snd::crypto::ibc::{Authority, NodeId};
use jr_snd::crypto::nonce::Nonce;
use jr_snd::dsss::code::CodeId;
use jr_snd::sim::geom::{Field, Point};
use jr_snd::sim::topology::physical_graph;

const A: usize = 0;
const B: usize = 1;
const C: usize = 2;
const D: usize = 3;
const E: usize = 4;
const F: usize = 5;
const G: usize = 6;
const H: usize = 7;

fn positions() -> Vec<Point> {
    vec![
        Point::new(500.0, 500.0), // A
        Point::new(700.0, 500.0), // B: 200 m from A (in range)
        Point::new(650.0, 650.0), // C: common neighbor of A and B
        Point::new(350.0, 650.0), // D
        Point::new(350.0, 350.0), // E
        Point::new(650.0, 350.0), // F
        Point::new(100.0, 250.0), // G: near E, far from A
        Point::new(900.0, 220.0), // H: near F, far from A
    ]
}

/// The jamming-resilient (logical) links of the figure: A's neighborhood
/// plus the C–B link and the E–G / F–H spurs.
fn logical_edges() -> Vec<(usize, usize)> {
    vec![(A, C), (A, D), (A, E), (A, F), (C, B), (E, G), (F, H)]
}

fn build_nodes() -> Vec<Node> {
    let authority = Authority::from_seed(b"fig1");
    let mut nodes: Vec<Node> = (0..8)
        .map(|i| {
            Node::new(
                i,
                vec![CodeId(i as u32)],
                authority.issue(NodeId(i as u32)),
                authority.verifier(),
            )
        })
        .collect();
    for (u, v) in logical_edges() {
        let (vid, uid) = (NodeId(v as u32), NodeId(u as u32));
        nodes[u].add_logical(v, vid, DiscoveryKind::Direct);
        nodes[v].add_logical(u, uid, DiscoveryKind::Direct);
    }
    nodes
}

#[test]
fn scenario_geometry_matches_figure() {
    let pos = positions();
    let range = 300.0;
    // A-B are physical neighbors; G and H are not in A's range.
    assert!(pos[A].distance(pos[B]) <= range);
    assert!(pos[A].distance(pos[G]) > range);
    assert!(pos[A].distance(pos[H]) > range);
    // Every logical link is physically feasible.
    for (u, v) in logical_edges() {
        assert!(
            pos[u].distance(pos[v]) <= range,
            "logical edge ({u},{v}) spans {} m",
            pos[u].distance(pos[v])
        );
    }
}

#[test]
fn a_discovers_b_through_common_neighbor_c() {
    let pos = positions();
    let physical = physical_graph(Field::new(1000.0, 1000.0), &pos, 300.0);
    let mut nodes = build_nodes();
    assert!(!nodes[A].is_logical(B), "A and B start undiscovered");

    let stats = initiate(&mut nodes, &physical, None, A, Nonce::from_value(1), 2);

    // The M-NDP response path A -> C -> B closes: both adopt the link.
    assert!(
        stats
            .discovered
            .iter()
            .any(|&(s, p, hops)| s == A && p == B && hops == 2),
        "discovered: {:?}",
        stats.discovered
    );
    assert!(nodes[A].is_logical(B) && nodes[B].is_logical(A));
    // G and H answered (they cannot know they are out of range) but their
    // HELLOs never reach A: exactly the paper's false-positive overhead.
    assert_eq!(stats.wasted_responses, 2, "G and H each waste one response");
}

#[test]
fn gps_filter_eliminates_wasted_responses() {
    let pos = positions();
    let physical = physical_graph(Field::new(1000.0, 1000.0), &pos, 300.0);
    let mut nodes = build_nodes();
    let gps = GpsFilter {
        positions: &pos,
        range: 300.0,
    };
    let stats = initiate(&mut nodes, &physical, Some(gps), A, Nonce::from_value(2), 2);
    assert!(stats.discovered.iter().any(|&(s, p, _)| s == A && p == B));
    assert_eq!(stats.wasted_responses, 0, "position check stops G and H");
}

#[test]
fn hop_limit_one_cannot_reach_b() {
    let pos = positions();
    let physical = physical_graph(Field::new(1000.0, 1000.0), &pos, 300.0);
    let mut nodes = build_nodes();
    let stats = initiate(&mut nodes, &physical, None, A, Nonce::from_value(3), 1);
    assert!(stats.discovered.is_empty(), "B is two logical hops away");
    assert!(!nodes[A].is_logical(B));
}

#[test]
fn verification_work_lands_on_the_relays() {
    let pos = positions();
    let physical = physical_graph(Field::new(1000.0, 1000.0), &pos, 300.0);
    let mut nodes = build_nodes();
    initiate(&mut nodes, &physical, None, A, Nonce::from_value(4), 2);
    // Every direct neighbor of A verified the request; B, G, H verified
    // two-signature chains; relays verified the responses too.
    for idx in [C, D, E, F] {
        assert!(
            nodes[idx].verifications() >= 1,
            "relay {idx} verified nothing"
        );
    }
    for idx in [B, G, H] {
        assert!(
            nodes[idx].verifications() >= 2,
            "responder {idx} verified the chain"
        );
    }
    assert!(nodes[A].verifications() >= 2, "A verifies response chains");
}
