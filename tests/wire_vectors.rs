//! Golden wire vectors: the packed TLV frames (and the legacy reference
//! frames they replace) are byte-frozen under `tests/vectors/`. Any change
//! to the bit layout — field order, varint grouping, TLV tags — breaks
//! these tests, forcing a deliberate format-version decision instead of a
//! silent on-air incompatibility (see the versioning policy in
//! `crates/core/src/wire.rs`).
//!
//! Vector file format: `[u32 LE bit length][payload]`, payload being the
//! frame's `PackedBits::to_bytes()` (LSB-first within each byte). To
//! regenerate after an intentional format bump:
//! `JRSND_WIRE_REGEN=1 cargo test --test wire_vectors` — CI diffs the
//! regenerated files against the committed ones and fails on drift.

use jr_snd::core::messages::{ChainEntry, MessageKind, MndpRequest, MndpResponse, WireConfig};
use jr_snd::core::params::Params;
use jr_snd::core::wire::{
    encode_auth, encode_hello, encode_request, encode_response, parse_auth, parse_hello,
    parse_request, parse_response, truncated_tag_value, BitCursor, PackedBits,
};
use jr_snd::crypto::ibc::{IbSignature, NodeId};
use jr_snd::crypto::mac::AuthTag;
use jr_snd::crypto::nonce::Nonce;
use std::path::PathBuf;

fn cfg() -> WireConfig {
    WireConfig::from_params(&Params::table1())
}

fn vector_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/vectors")
        .join(format!("{name}.bin"))
}

fn serialize(bits: &PackedBits) -> Vec<u8> {
    let mut out = (u32::try_from(bits.len()).expect("frame fits u32"))
        .to_le_bytes()
        .to_vec();
    out.extend_from_slice(&bits.to_bytes());
    out
}

fn deserialize(bytes: &[u8]) -> PackedBits {
    let (head, payload) = bytes.split_at(4);
    let len = u32::from_le_bytes(head.try_into().expect("4-byte header")) as usize;
    PackedBits::from_bytes(payload, len).expect("committed vector is well-formed")
}

/// Compares `bits` against the committed vector, or rewrites it when
/// `JRSND_WIRE_REGEN=1`. Returns the committed frame for parse checks.
fn check_vector(name: &str, bits: &PackedBits) -> PackedBits {
    let path = vector_path(name);
    let encoded = serialize(bits);
    if std::env::var("JRSND_WIRE_REGEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("vectors dir")).expect("mkdir vectors");
        std::fs::write(&path, &encoded).expect("write vector");
    }
    let committed = std::fs::read(&path).unwrap_or_else(|e| {
        panic!("missing golden vector {name}.bin ({e}); run with JRSND_WIRE_REGEN=1 to create")
    });
    assert_eq!(
        committed, encoded,
        "{name}: encoder output drifted from the committed golden vector — \
         this is a wire-format break; bump the format version or fix the encoder"
    );
    deserialize(&committed)
}

fn legacy_packed(bits: &[bool]) -> PackedBits {
    let mut out = PackedBits::new();
    out.extend_from_bools(bits);
    out
}

fn canonical_tag() -> AuthTag {
    AuthTag(core::array::from_fn(|i| {
        (i as u8).wrapping_mul(31).wrapping_add(5)
    }))
}

fn canonical_request() -> MndpRequest {
    MndpRequest {
        source: NodeId(3),
        nonce: Nonce::from_value(0x5_1234),
        nu: 2,
        chain: vec![
            ChainEntry {
                id: NodeId(3),
                neighbors: vec![NodeId(10), NodeId(600)],
                signature: IbSignature::from_parts(NodeId(3), [0x11; 32]),
            },
            ChainEntry {
                id: NodeId(10),
                neighbors: vec![],
                signature: IbSignature::from_parts(NodeId(10), [0x22; 32]),
            },
        ],
    }
}

fn canonical_response() -> MndpResponse {
    let req = canonical_request();
    MndpResponse {
        source: req.source,
        responder: NodeId(77),
        nonce: Nonce::from_value(7),
        nu: req.nu,
        chain: vec![ChainEntry {
            id: NodeId(77),
            neighbors: vec![NodeId(3)],
            signature: IbSignature::from_parts(NodeId(77), [0x33; 32]),
        }],
    }
}

#[test]
fn hello_vectors_are_byte_stable() {
    let cfg = cfg();
    let mut packed = PackedBits::new();
    encode_hello(&cfg, MessageKind::Hello, NodeId(0xBEE), &mut packed).unwrap();
    let committed = check_vector("hello_packed", &packed);
    let (kind, id) = parse_hello(&cfg, &mut BitCursor::new(&committed)).unwrap();
    assert_eq!((kind, id), (MessageKind::Hello, NodeId(0xBEE)));

    let legacy = cfg.encode_hello(MessageKind::Hello, NodeId(0xBEE)).unwrap();
    let committed = check_vector("hello_legacy", &legacy_packed(&legacy));
    let mut bools = Vec::new();
    committed.write_bools_into(&mut bools);
    assert_eq!(
        cfg.decode_hello(&bools).unwrap(),
        (MessageKind::Hello, NodeId(0xBEE))
    );
}

#[test]
fn auth_vectors_are_byte_stable() {
    let cfg = cfg();
    let tag = canonical_tag();
    // A 7-bit id: packed AUTH beats legacy for typical ids, while the
    // multi-group varint path is exercised by the 12-bit HELLO id above.
    let (id, nonce) = (NodeId(0x42), Nonce::from_value(0xA_BCDE));
    let mut packed = PackedBits::new();
    encode_auth(&cfg, id, nonce, &tag, &mut packed).unwrap();
    let committed = check_vector("auth_packed", &packed);
    let (pid, pn, mac) = parse_auth(&cfg, &mut BitCursor::new(&committed)).unwrap();
    assert_eq!((pid, pn), (id, nonce));
    assert_eq!(mac, truncated_tag_value(&cfg, &tag).unwrap());

    let legacy = cfg.encode_auth(id, nonce, &tag).unwrap();
    let committed = check_vector("auth_legacy", &legacy_packed(&legacy));
    let mut bools = Vec::new();
    committed.write_bools_into(&mut bools);
    let (lid, ln, ltag) = cfg.decode_auth(&bools).unwrap();
    assert_eq!((lid, ln), (id, nonce));
    assert_eq!(ltag, cfg.truncate_tag(&tag));
}

#[test]
fn request_vectors_are_byte_stable() {
    let cfg = cfg();
    let req = canonical_request();
    let mut packed = PackedBits::new();
    encode_request(&cfg, &req, &mut packed).unwrap();
    let committed = check_vector("request_packed", &packed);
    assert_eq!(
        parse_request(&cfg, &mut BitCursor::new(&committed)).unwrap(),
        req
    );

    let legacy = cfg.encode_request(&req).unwrap();
    let committed = check_vector("request_legacy", &legacy_packed(&legacy));
    let mut bools = Vec::new();
    committed.write_bools_into(&mut bools);
    assert_eq!(cfg.decode_request(&bools).unwrap(), req);
}

#[test]
fn response_vectors_are_byte_stable() {
    let cfg = cfg();
    let resp = canonical_response();
    let mut packed = PackedBits::new();
    encode_response(&cfg, &resp, &mut packed).unwrap();
    let committed = check_vector("response_packed", &packed);
    assert_eq!(
        parse_response(&cfg, &mut BitCursor::new(&committed)).unwrap(),
        resp
    );

    let legacy = cfg.encode_response(&resp).unwrap();
    let committed = check_vector("response_legacy", &legacy_packed(&legacy));
    let mut bools = Vec::new();
    committed.write_bools_into(&mut bools);
    assert_eq!(cfg.decode_response(&bools).unwrap(), resp);
}

/// The packed frames must stay strictly smaller than the legacy frames
/// they replace — the headline airtime win this format exists for.
#[test]
fn packed_vectors_beat_legacy_sizes() {
    for (packed, legacy) in [
        ("hello_packed", "hello_legacy"),
        ("auth_packed", "auth_legacy"),
        ("request_packed", "request_legacy"),
        ("response_packed", "response_legacy"),
    ] {
        let p = std::fs::read(vector_path(packed)).expect("packed vector");
        let l = std::fs::read(vector_path(legacy)).expect("legacy vector");
        let p_bits = u32::from_le_bytes(p[..4].try_into().unwrap());
        let l_bits = u32::from_le_bytes(l[..4].try_into().unwrap());
        assert!(
            p_bits < l_bits,
            "{packed}: {p_bits} bits should beat {legacy}'s {l_bits}"
        );
    }
}
