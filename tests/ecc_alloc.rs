//! Proves the steady-state ECC datapath is allocation-free.
//!
//! A counting global allocator wraps `System`; after one warm-up frame
//! populates the `ExpansionScratch` buffers and the cached `RsCode`
//! tables, further encode/decode round-trips of the same geometry must
//! perform **zero** heap allocations. This lives outside `jrsnd-ecc`
//! because the crate itself forbids `unsafe`, which a `GlobalAlloc` impl
//! requires.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use jrsnd_ecc::expand::{ExpansionCode, ExpansionScratch};
use jrsnd_ecc::rs::{RsCode, RsScratch};
use rand::{Rng, SeedableRng};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap allocations it performed.
fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn rs_encode_decode_steady_state_is_allocation_free() {
    let code = RsCode::new(255, 223).unwrap();
    let mut r = rand::rngs::StdRng::seed_from_u64(1);
    let data: Vec<u8> = (0..223).map(|_| r.gen()).collect();
    let mut word = vec![0u8; 255];
    let mut scratch = RsScratch::new();
    let era: Vec<usize> = (0..16).collect();

    // Warm-up (metrics registry may lazily allocate its counters here).
    code.encode_into(&data, &mut word).unwrap();
    for &p in &era {
        word[p] ^= 0x5A;
    }
    word[100] ^= 0x7;
    code.decode_with(&mut word, &era, &mut scratch).unwrap();

    let n = count_allocs(|| {
        for round in 0..50u8 {
            code.encode_into(&data, &mut word).unwrap();
            for &p in &era {
                word[p] ^= round | 1;
            }
            word[100] ^= 0x7;
            let fixed = code.decode_with(&mut word, &era, &mut scratch).unwrap();
            assert_eq!(fixed, 17);
            assert_eq!(&word[..223], &data[..]);
        }
    });
    assert_eq!(n, 0, "steady-state RS round-trips allocated {n} times");
}

#[test]
fn expansion_round_trip_steady_state_is_allocation_free() {
    let code = ExpansionCode::new(1.0).unwrap();
    let mut r = rand::rngs::StdRng::seed_from_u64(2);
    let msg: Vec<bool> = (0..168).map(|_| r.gen()).collect();
    let mut scratch = ExpansionScratch::new();
    let mut coded = Vec::new();
    let mut out = Vec::new();

    // Warm-up frame sizes every scratch buffer, caches the RsCode, and —
    // by actually corrupting the word — touches every lazily-registered
    // metrics counter (including `ecc.symbols_corrected`) before counting.
    code.encode_bits_into(&msg, &mut scratch, &mut coded)
        .unwrap();
    let burst = coded.len() / 3;
    let mut erased = vec![false; coded.len()];
    for (c, e) in coded.iter_mut().zip(erased.iter_mut()).take(burst) {
        *c = !*c;
        *e = true;
    }
    code.decode_bits_into(&coded, &erased, msg.len(), &mut scratch, &mut out)
        .unwrap();
    assert_eq!(out, msg);

    let n = count_allocs(|| {
        for _ in 0..50 {
            code.encode_bits_into(&msg, &mut scratch, &mut coded)
                .unwrap();
            for (i, c) in coded.iter_mut().enumerate() {
                if erased[i] {
                    *c = !*c;
                }
            }
            code.decode_bits_into(&coded, &erased, msg.len(), &mut scratch, &mut out)
                .unwrap();
            assert_eq!(out, msg);
        }
    });
    assert_eq!(
        n, 0,
        "steady-state expansion round-trips allocated {n} times"
    );
}
