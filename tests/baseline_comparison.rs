//! Cross-crate baseline claims (Sections I/II quantified): the intuitive
//! alternatives each fail on exactly the axis the paper names, and JR-SND
//! holds the middle ground on all of them.

use jr_snd::baselines::{common_code, pairwise, ufh};
use jr_snd::core::analysis::{dndp, mndp};
use jr_snd::core::jammer::JammerKind;
use jr_snd::core::params::Params;

#[test]
fn common_code_is_a_single_point_of_failure() {
    let p = Params::table1();
    assert_eq!(common_code::p_discovery(&p, 0, JammerKind::Reactive), 1.0);
    // One compromised node anywhere destroys discovery everywhere.
    assert_eq!(common_code::p_discovery(&p, 1, JammerKind::Reactive), 0.0);
    // JR-SND under the same single compromise barely notices.
    let mut p1 = p.clone();
    p1.q = 1;
    assert!(dndp::p_dndp_lower(&p1) > 0.8);
}

#[test]
fn pairwise_codes_trade_security_for_unusable_latency() {
    let p = Params::table1();
    assert_eq!(pairwise::p_discovery(&p, 100), 1.0, "compromise-proof");
    let t_pairwise = pairwise::discovery_latency(&p);
    let t_jrsnd = dndp::t_dndp(&p);
    assert!(
        t_pairwise > 100.0 * t_jrsnd,
        "pairwise {t_pairwise}s vs JR-SND {t_jrsnd}s"
    );
    // Storage: n-1 codes per node vs m.
    assert!(pairwise::codes_per_node(&p) >= 10 * p.m);
}

#[test]
fn ufh_is_slow_and_dos_exposed() {
    let cfg = ufh::UfhConfig::strasser_like();
    let p = Params::table1();
    // Latency: a Strasser-style establishment takes far longer than the
    // "few seconds" MANET neighbor discovery allows.
    assert!(cfg.expected_latency() > 5.0 * mndp::t_jrsnd(&p));
    // DoS: the public strategy's verification load is linear forever.
    let lo = ufh::dos_verifications(p.n, 1_000);
    let hi = ufh::dos_verifications(p.n, 1_000_000);
    assert_eq!(hi, 1000 * lo);
}

#[test]
fn ufh_simulation_tracks_coupon_collector() {
    use jr_snd::sim::rng::SimRng;
    use rand::SeedableRng;
    let cfg = ufh::UfhConfig {
        channels: 30,
        jammed_per_slot: 3,
        fragments: 12,
        slot_secs: 1e-3,
    };
    let mut rng = SimRng::seed_from_u64(4);
    let stats = ufh::measured_latency(&cfg, 200, &mut rng);
    let expect = cfg.expected_latency();
    assert!(
        (stats.mean() - expect).abs() / expect < 0.15,
        "measured {} vs {expect}",
        stats.mean()
    );
}

#[test]
fn jrsnd_holds_all_three_axes_at_once() {
    // Resilience, latency, and bounded DoS simultaneously — the claim the
    // whole paper rests on.
    let p = Params::table1();
    let pd = dndp::p_dndp_lower(&p);
    let pm = mndp::p_mndp_two_hop(pd, p.expected_degree());
    assert!(mndp::p_jrsnd(pd, pm) > 0.99, "resilient discovery");
    assert!(mndp::t_jrsnd(&p) < 2.0, "within the mobility deadline");
    let cap = jr_snd::core::revocation::verification_cap_per_code(&p);
    assert!(
        cap <= (p.l as u64) * (u64::from(p.gamma) + 1),
        "bounded DoS"
    );
}
