//! Escalating jamming attack: how discovery degrades as the adversary
//! compromises more nodes, under each jammer model — and why the
//! redundancy design of D-NDP matters against the "intelligent attack"
//! that spares HELLOs and targets the later handshake messages.
//!
//! ```text
//! cargo run --release --example jamming_attack
//! ```

use jr_snd::core::dndp::DndpConfig;
use jr_snd::core::jammer::JammerKind;
use jr_snd::core::montecarlo::run_many;
use jr_snd::core::network::ExperimentConfig;
use jr_snd::core::params::Params;

fn scenario(q: usize, jammer: JammerKind, dndp: DndpConfig) -> ExperimentConfig {
    let mut params = Params::table1();
    params.n = 500;
    params.field_w = 2500.0;
    params.field_h = 2500.0;
    params.l = 20;
    params.m = 60;
    params.q = q;
    ExperimentConfig {
        params,
        jammer,
        dndp,
    }
}

fn main() {
    let reps = 8;
    println!("escalating node compromise (reactive vs random jamming)");
    println!(
        "{:>4}  {:>18} {:>18} {:>12}",
        "q", "P(D-NDP) reactive", "P(D-NDP) random", "P(JR-SND)"
    );
    for q in [0usize, 5, 10, 20, 40] {
        let reactive = run_many(
            &scenario(q, JammerKind::Reactive, DndpConfig::default()),
            reps,
            11,
        );
        let random = run_many(
            &scenario(q, JammerKind::Random, DndpConfig::default()),
            reps,
            11,
        );
        println!(
            "{:>4}  {:>18.4} {:>18.4} {:>12.4}",
            q,
            reactive.p_dndp.mean(),
            random.p_dndp.mean(),
            reactive.p_jrsnd.mean(),
        );
    }
    println!("\nreactive <= random in discovery probability (Theorem 1's bracketing),");
    println!("and M-NDP keeps JR-SND high even when D-NDP is badly degraded.\n");

    println!("the intelligent tail-only attack vs D-NDP's redundancy design");
    let attack_redundant = DndpConfig {
        redundancy: true,
        tail_only_attack: true,
        ..DndpConfig::default()
    };
    let attack_strawman = DndpConfig {
        redundancy: false,
        tail_only_attack: true,
        ..DndpConfig::default()
    };
    println!(
        "{:>4}  {:>22} {:>22}",
        "q", "P(D-NDP) redundant", "P(D-NDP) single-code"
    );
    for q in [5usize, 10, 20, 40] {
        let redundant = run_many(
            &scenario(q, JammerKind::Reactive, attack_redundant),
            reps,
            13,
        );
        let strawman = run_many(
            &scenario(q, JammerKind::Reactive, attack_strawman),
            reps,
            13,
        );
        println!(
            "{:>4}  {:>22.4} {:>22.4}",
            q,
            redundant.p_dndp.mean(),
            strawman.p_dndp.mean(),
        );
    }
    println!("\nspreading CONFIRM/AUTH over *all* shared codes (the paper's design)");
    println!("beats picking one random shared code once the attacker targets the tail.");
}
