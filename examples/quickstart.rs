//! Quickstart: deploy a MANET, pre-distribute spread codes, run JR-SND
//! neighbor discovery under reactive jamming, and compare the measurement
//! with the paper's closed-form analysis.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use jr_snd::core::analysis::{dndp as theory_dndp, mndp as theory_mndp};
use jr_snd::core::montecarlo::run_many;
use jr_snd::core::network::ExperimentConfig;

fn main() {
    // Start from the paper's Table I and shrink the deployment (keeping
    // the ~22.6 mean-degree density) so the example runs in about a
    // second even in debug builds.
    let mut config = ExperimentConfig::paper_default();
    config.params.n = 500;
    config.params.field_w = 2500.0;
    config.params.field_h = 2500.0;
    config.params.q = 5; // same 1% compromise rate as Table I

    println!("JR-SND quickstart");
    println!("-----------------");
    println!(
        "{} nodes, {:.0}x{:.0} m field, range {:.0} m, m = {} codes/node, l = {}, q = {} compromised, {} jamming\n",
        config.params.n,
        config.params.field_w,
        config.params.field_h,
        config.params.range,
        config.params.m,
        config.params.l,
        config.params.q,
        config.jammer,
    );

    let reps = 10;
    let agg = run_many(&config, reps, 42);

    println!("measured over {reps} seeded runs:");
    println!(
        "  P(D-NDP)   = {:.4} ± {:.4}   (direct discovery)",
        agg.p_dndp.mean(),
        agg.p_dndp.ci95_half_width()
    );
    println!(
        "  P(M-NDP)   = {:.4} ± {:.4}   (relay path of <= {} hops exists)",
        agg.p_mndp.mean(),
        agg.p_mndp.ci95_half_width(),
        config.params.nu
    );
    println!(
        "  P(JR-SND)  = {:.4} ± {:.4}   (D-NDP + one M-NDP round)",
        agg.p_jrsnd.mean(),
        agg.p_jrsnd.ci95_half_width()
    );
    println!(
        "  steady     = {:.4}            (M-NDP iterated to fixpoint)",
        agg.p_jrsnd_steady.mean()
    );
    println!(
        "  T(D-NDP)   = {:.3} s, T(M-NDP) = {:.3} s",
        agg.t_dndp.mean(),
        agg.t_mndp.mean()
    );

    println!("\ntheory (Theorems 1-4 at these parameters):");
    let p_lower = theory_dndp::p_dndp_lower(&config.params);
    let p_upper = theory_dndp::p_dndp_upper(&config.params);
    println!("  {p_lower:.4} <= P(D-NDP) <= {p_upper:.4}   (Theorem 1)");
    println!(
        "  T(D-NDP) ~ {:.3} s                 (Theorem 2)",
        theory_dndp::t_dndp(&config.params)
    );
    let g = config.params.expected_degree();
    println!(
        "  P(M-NDP, nu=2) >= {:.4}            (Theorem 3)",
        theory_mndp::p_mndp_two_hop(p_lower, g)
    );
    println!(
        "  T(M-NDP) ~ {:.3} s                 (Theorem 4)",
        theory_mndp::t_mndp(&config.params, config.params.nu, g)
    );

    println!(
        "\ntakeaway: despite {} compromised nodes and a reactive jammer,",
        config.params.q
    );
    println!(
        "neighbors discover each other with probability {:.2} in under {:.1} s.",
        agg.p_jrsnd.mean(),
        agg.t_dndp.mean().max(agg.t_mndp.mean())
    );
}
