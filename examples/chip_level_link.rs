//! The D-NDP handshake on real chips: watch the four messages travel as
//! ±1 chip streams through ECC, spreading, a shared medium with a jammer,
//! sliding-window synchronization, and de-spreading.
//!
//! ```text
//! cargo run --release --example chip_level_link
//! ```

use jr_snd::core::chiplink::{run_handshake, ChipJammer, Stage};
use jr_snd::core::params::Params;
use jr_snd::crypto::ibc::Authority;
use jr_snd::dsss::code::SpreadCode;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // Chip-level runs use shorter codes than the paper's N = 512 so the
    // example is instant; tau scales accordingly (see chiplink docs).
    let mut params = Params::table1();
    params.n_chips = 256;
    params.tau = 0.30;

    let mut rng = StdRng::seed_from_u64(2011);
    let shared = SpreadCode::random(params.n_chips, &mut rng);
    let a_codes = vec![
        SpreadCode::random(params.n_chips, &mut rng),
        shared.clone(),
        SpreadCode::random(params.n_chips, &mut rng),
    ];
    let b_codes = vec![
        SpreadCode::random(params.n_chips, &mut rng),
        shared.clone(),
        SpreadCode::random(params.n_chips, &mut rng),
    ];
    let authority = Authority::from_seed(b"chip-level-example");

    println!(
        "chip-level D-NDP handshake (N = {} chips, tau = {})",
        params.n_chips, params.tau
    );
    println!(
        "A holds {} codes, B holds {} codes, exactly one is shared\n",
        a_codes.len(),
        b_codes.len()
    );

    let run = |label: &str, jammer: Option<&ChipJammer>, seed: u64| {
        let report = run_handshake(&params, &authority, &a_codes, &b_codes, 1, 1, jammer, seed);
        println!(
            "{label:<46} stage: {:?}, discovered: {}, scan cost: {} correlations",
            report.stage, report.discovered, report.scan_correlations
        );
        report
    };

    let clean = run("1. clean channel", None, 1);
    assert_eq!(clean.stage, Stage::Complete);

    let wrong = ChipJammer::from_start(SpreadCode::random(params.n_chips, &mut rng), 1.0, 1);
    run("2. jammer, wrong code, full coverage", Some(&wrong), 2);

    let partial = ChipJammer::from_start(shared.clone(), 0.20, 1);
    run(
        "3. jammer, CORRECT code, 20% of each message",
        Some(&partial),
        3,
    );

    let full = ChipJammer::from_start(shared.clone(), 1.0, 3);
    run("4. jammer, CORRECT code, full coverage", Some(&full), 4);

    let intelligent = ChipJammer {
        code: shared,
        fraction: 1.0,
        amplitude: 3,
        first_message: 1, // spare the HELLO, kill everything after
    };
    run(
        "5. intelligent attack: spare HELLO, jam the rest",
        Some(&intelligent),
        5,
    );

    println!("\nwhat happened:");
    println!("  2. without the secret code the jammer is just background noise;");
    println!("  3. the (1+mu)-expansion Reed-Solomon coding absorbs sub-threshold jamming");
    println!("     (the paper's mu/(1+mu) bound in action);");
    println!("  4. only knowing the code AND covering most of the message kills the link —");
    println!("     which is why compromised codes are what matters, and why JR-SND");
    println!("     bounds how many nodes share each one.");
}
