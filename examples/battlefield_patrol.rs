//! Battlefield patrol: the paper's motivating scenario — squads moving
//! through hostile terrain must *re*-discover neighbors continuously
//! because mobility keeps changing who is in range.
//!
//! A platoon of nodes follows the random-waypoint model; every `T`-second
//! epoch each node runs JR-SND discovery against its current physical
//! neighbors (under a reactive jammer with compromised codes). The
//! example tracks how the logical neighborhood chases the physical one.
//!
//! ```text
//! cargo run --release --example battlefield_patrol
//! ```

use jr_snd::core::dndp;
use jr_snd::core::jammer::{Jammer, JammerKind};
use jr_snd::core::mndp;
use jr_snd::core::params::Params;
use jr_snd::core::predist::CodeAssignment;
use jr_snd::sim::mobility::{Mobility, RandomWaypoint};
use jr_snd::sim::rng::SimRng;
use jr_snd::sim::time::SimTime;
use jr_snd::sim::topology::{physical_graph, Graph};
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let mut params = Params::table1();
    params.n = 120; // one company's worth of radios
    params.field_w = 1200.0;
    params.field_h = 1200.0;
    params.l = 12;
    params.m = 40;
    params.q = 3;
    params.validate().expect("parameters are consistent");

    let root = SimRng::seed_from_u64(7);
    let field = params.field();

    // Soldiers move at 1-3 m/s with 30 s pauses at waypoints.
    let mut mob_rng = root.fork("mobility", 0);
    let horizon = SimTime::from_secs(1200);
    let patrol = RandomWaypoint::new(field, params.n, 1.0, 3.0, 30.0, horizon, &mut mob_rng);

    // Pre-deployment: the authority distributes spread codes and the
    // adversary compromises a few radios.
    let mut predist_rng = root.fork("predist", 0);
    let assignment = CodeAssignment::generate(&params, &mut predist_rng);
    let mut compromise_rng = root.fork("compromise", 0);
    let mut order: Vec<usize> = (0..params.n).collect();
    order.shuffle(&mut compromise_rng);
    let compromised = &order[..params.q];
    let jammer = Jammer::new(
        JammerKind::Reactive,
        assignment.compromised_codes(compromised),
        &params,
    );
    println!(
        "patrol of {} nodes, {} compromised radios expose {} of {} spread codes\n",
        params.n,
        params.q,
        jammer.compromised_count(),
        assignment.pool_size()
    );

    // Logical links persist while both endpoints stay in range; when a
    // neighbor moves away the monitoring timeout drops the link.
    let mut logical = Graph::new(params.n);
    let mut protocol_rng = root.fork("protocol", 0);
    println!(
        "{:>6}  {:>9} {:>9} {:>10} {:>9} {:>8}",
        "t (s)", "physical", "logical", "coverage", "new", "dropped"
    );
    for epoch in 0..10u64 {
        let now = SimTime::from_secs(epoch * 120);
        let positions = patrol.snapshot(now);
        let physical = physical_graph(field, &positions, params.range);

        // Links to departed neighbors time out.
        let stale: Vec<(usize, usize)> = logical
            .edges()
            .filter(|&(u, v)| !physical.has_edge(u, v))
            .collect();
        for &(u, v) in &stale {
            logical.remove_edge(u, v);
        }

        // D-NDP on every physical pair not yet logical.
        let mut new_links = 0usize;
        for (u, v) in physical.edges() {
            if logical.has_edge(u, v) {
                continue;
            }
            let shared = assignment.shared_codes(u, v);
            let out = dndp::simulate_pair(&params, &shared, &jammer, &mut protocol_rng);
            if out.discovered {
                logical.add_edge(u, v);
                new_links += 1;
            }
        }
        // One M-NDP round rescues pairs the jammer or the code lottery
        // blocked.
        for (u, v, _) in mndp::closure_pass(&logical, &physical, params.nu) {
            logical.add_edge(u, v);
            new_links += 1;
        }

        let coverage = if physical.edge_count() == 0 {
            1.0
        } else {
            logical
                .edges()
                .filter(|&(u, v)| physical.has_edge(u, v))
                .count() as f64
                / physical.edge_count() as f64
        };
        println!(
            "{:>6}  {:>9} {:>9} {:>9.1}% {:>9} {:>8}",
            now.as_secs_f64() as u64,
            physical.edge_count(),
            logical.edge_count(),
            coverage * 100.0,
            new_links,
            stale.len()
        );
    }
    println!("\ncoverage stays high across epochs even as the topology churns —");
    println!("that is the \"frequent re-discovery under mobility\" requirement JR-SND targets.");
}
