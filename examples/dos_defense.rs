//! The fake-request DoS attack and JR-SND's revocation defense
//! (Section V-D), head to head with a public-strategy baseline.
//!
//! The attacker injects fake neighbor-discovery requests; every receiving
//! node must run an expensive signature verification (t_ver = 35.5 ms)
//! before it can reject one. Under a public strategy the whole network
//! hears every injection forever; under JR-SND only the ≤ l−1 holders of
//! a compromised code hear it, and each revokes the code after γ invalid
//! requests.
//!
//! ```text
//! cargo run --release --example dos_defense
//! ```

use jr_snd::baselines::ufh;
use jr_snd::core::params::Params;
use jr_snd::core::predist::CodeAssignment;
use jr_snd::core::revocation::{simulate_dos, verification_cap_per_code};
use jr_snd::sim::rng::SimRng;
use rand::SeedableRng;

fn main() {
    let mut params = Params::table1();
    params.n = 200;
    params.l = 20;
    params.m = 40;
    params.q = 4;
    params.gamma = 5;
    params.validate().expect("parameters are consistent");

    let mut rng = SimRng::seed_from_u64(3);
    let assignment = CodeAssignment::generate(&params, &mut rng);
    let compromised: Vec<usize> = (0..params.q).collect();
    let n_codes = assignment.compromised_codes(&compromised).len();
    let cap = n_codes as u64 * verification_cap_per_code(&params);

    println!(
        "{} nodes, {} compromised expose {} codes; gamma = {}, t_ver = {:.1} ms",
        params.n,
        params.q,
        n_codes,
        params.gamma,
        params.t_ver * 1e3
    );
    println!(
        "analytic JR-SND damage cap: {} verifications ({:.1} CPU-seconds network-wide)\n",
        cap,
        cap as f64 * params.t_ver
    );

    println!(
        "{:>16} {:>22} {:>14} {:>22}",
        "injections/code", "JR-SND verifications", "(CPU s)", "public-strategy verif."
    );
    for effort in [1u64, 10, 100, 1_000, 100_000] {
        let out = simulate_dos(&params, &assignment, &compromised, effort);
        let public = ufh::dos_verifications(params.n - params.q, effort * n_codes as u64);
        println!(
            "{:>16} {:>22} {:>14.1} {:>22}",
            effort, out.verifications, out.cpu_seconds, public
        );
    }

    println!("\nJR-SND saturates at its cap — after local revocation the attacker is");
    println!("shouting into codes nobody listens to — while the public-strategy");
    println!("baseline burns CPU linearly in attacker effort, forever.");
}
