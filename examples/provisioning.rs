//! Provisioning walkthrough: the `Deployment` facade from the authority's
//! point of view — one master secret in, field-ready nodes out — ending
//! with two provisioned radios completing a real chip-level handshake.
//!
//! ```text
//! cargo run --release --example provisioning
//! ```

use jr_snd::core::chiplink::run_handshake;
use jr_snd::core::deployment::Deployment;
use jr_snd::core::params::Params;

fn main() {
    let mut params = Params::table1();
    params.n = 120;
    params.l = 12;
    params.m = 30;
    params.n_chips = 256; // short codes keep the chip-level demo instant
    params.tau = 0.30;

    println!("pre-deployment: one master secret drives everything\n");
    let mut deployment =
        Deployment::new(params, b"battalion-7 master secret").expect("valid parameters");
    println!(
        "  pool: {} secret spread codes of {} chips (s = ceil(n/l) * m)",
        deployment.pool().len(),
        deployment.params().n_chips
    );
    println!(
        "  assignment: {} real nodes x {} codes, each code held by <= {} nodes",
        deployment.assignment().n_real(),
        deployment.params().m,
        deployment.assignment().sharing_bound()
    );
    println!(
        "  spare capacity: {} virtual slots for late joiners\n",
        deployment.assignment().n_virtual()
    );

    // Hand two radios their packages.
    let alpha = deployment.provision(0);
    let bravo = deployment.provision(1);
    let shared = deployment.assignment().shared_codes(0, 1);
    println!(
        "radio {} and radio {} share {} pre-distributed code(s): {:?}",
        alpha.node().id(),
        bravo.node().id(),
        shared.len(),
        shared
    );

    if let Some(&code) = shared.first() {
        let a_codes: Vec<_> = alpha.codes().iter().map(|(_, c)| c.clone()).collect();
        let b_codes: Vec<_> = bravo.codes().iter().map(|(_, c)| c.clone()).collect();
        let ia = alpha
            .node()
            .codes()
            .iter()
            .position(|&c| c == code)
            .unwrap();
        let ib = bravo
            .node()
            .codes()
            .iter()
            .position(|&c| c == code)
            .unwrap();
        let report = run_handshake(
            deployment.params(),
            deployment.authority(),
            &a_codes,
            &b_codes,
            ia,
            ib,
            None,
            7,
        );
        println!(
            "chip-level D-NDP handshake over {code}: stage {:?}, discovered = {}",
            report.stage, report.discovered
        );
    } else {
        println!("(this pair would rely on M-NDP — rerun with a different pair)");
    }

    // A replacement radio arrives in the field.
    match deployment.admit() {
        Some(joiner) => println!(
            "\nlate joiner admitted as {} with {} codes from the same pool",
            joiner.node().id(),
            joiner.codes().len()
        ),
        None => println!("\nno virtual slots left; the authority would run another round"),
    }
    println!("\neverything above regenerates bit-for-bit from the master secret.");
}
