//! Squad maneuver: reference-point group mobility plus the multi-antenna
//! extension.
//!
//! Four squads sweep the field as cohesive units. Discovery runs every
//! epoch under reactive jamming; we compare how fast a single-antenna
//! radio (the paper's assumption) and a 4-antenna radio (the paper's
//! future work, implemented in `jrsnd::multiantenna`) complete each
//! epoch's direct discoveries.
//!
//! ```text
//! cargo run --release --example squad_maneuver
//! ```

use jr_snd::core::dndp;
use jr_snd::core::jammer::{Jammer, JammerKind};
use jr_snd::core::multiantenna;
use jr_snd::core::params::Params;
use jr_snd::core::predist::CodeAssignment;
use jr_snd::sim::mobility::{Mobility, ReferencePointGroup};
use jr_snd::sim::rng::SimRng;
use jr_snd::sim::stats::Histogram;
use jr_snd::sim::time::SimTime;
use jr_snd::sim::topology::physical_graph;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let mut params = Params::table1();
    params.n = 96; // 4 squads x 24 radios
    params.field_w = 1500.0;
    params.field_h = 1500.0;
    params.l = 12;
    params.m = 48;
    params.q = 2;
    params.validate().expect("parameters are consistent");

    let root = SimRng::seed_from_u64(12);
    let field = params.field();
    let mut mob_rng = root.fork("mobility", 0);
    let squads = ReferencePointGroup::new(
        field,
        4,
        24,
        1.5,
        4.0,
        20.0,
        80.0,
        4.0,
        SimTime::from_secs(1800),
        &mut mob_rng,
    );

    let mut predist_rng = root.fork("predist", 0);
    let assignment = CodeAssignment::generate(&params, &mut predist_rng);
    let mut compromise_rng = root.fork("compromise", 0);
    let mut order: Vec<usize> = (0..params.n).collect();
    order.shuffle(&mut compromise_rng);
    let jammer = Jammer::new(
        JammerKind::Reactive,
        assignment.compromised_codes(&order[..params.q]),
        &params,
    );

    println!("four squads of 24, reference-point group mobility, reactive jamming\n");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>14}",
        "t (s)", "physical", "intra-squad", "inter-squad", "P(D-NDP)"
    );
    let mut protocol_rng = root.fork("protocol", 0);
    let mut latencies = Histogram::new(0.0, 2.0, 40);
    for epoch in 0..8u64 {
        let now = SimTime::from_secs(epoch * 180);
        let positions = squads.snapshot(now);
        let physical = physical_graph(field, &positions, params.range);
        let (mut intra, mut inter, mut found) = (0usize, 0usize, 0usize);
        for (u, v) in physical.edges() {
            if squads.group_of(u) == squads.group_of(v) {
                intra += 1;
            } else {
                inter += 1;
            }
            let shared = assignment.shared_codes(u, v);
            let out = dndp::simulate_pair(&params, &shared, &jammer, &mut protocol_rng);
            if out.discovered {
                found += 1;
                if let Some(t) = out.latency {
                    latencies.record(t);
                }
            }
        }
        println!(
            "{:>6} {:>10} {:>12} {:>12} {:>14.3}",
            now.as_secs_f64() as u64,
            physical.edge_count(),
            intra,
            inter,
            found as f64 / physical.edge_count().max(1) as f64
        );
    }

    println!("\nper-discovery D-NDP latency (single antenna):");
    println!(
        "  p10 = {:.3} s, median = {:.3} s, p90 = {:.3} s ({} samples)",
        latencies.quantile(0.10),
        latencies.quantile(0.50),
        latencies.quantile(0.90),
        latencies.count()
    );

    println!("\nthe multi-antenna extension at these parameters:");
    println!(
        "{:>4} {:>10} {:>6} {:>10}",
        "k", "lambda_k", "r_k", "T_D(k) s"
    );
    for k in [1usize, 2, 4] {
        let s = multiantenna::schedule(&params, k);
        println!(
            "{:>4} {:>10.3} {:>6} {:>10.3}",
            k,
            s.lambda,
            s.r,
            multiantenna::t_dndp_k(&params, k)
        );
    }
    println!("\ninter-squad encounters are brief — exactly where the k-antenna");
    println!("latency cut (or the equivalent-m probability boost) pays off.");
}
