//! No-op derive macros backing the offline `serde` shim: `#[derive(Serialize,
//! Deserialize)]` compiles (attributes are accepted and ignored) but emits no
//! trait impls beyond blanket-free empty markers.

use proc_macro::TokenStream;

/// Emits an (empty-bodied) `serde::Serialize` impl for the derived type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    impl_marker(input, "Serialize")
}

/// Emits an (empty-bodied) `serde::Deserialize` impl for the derived type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    impl_marker(input, "Deserialize")
}

/// Extracts the type name following `struct`/`enum` and emits
/// `impl serde::Trait for Name {}`. Generic types are not supported (and not
/// used with these derives in this workspace).
fn impl_marker(input: TokenStream, trait_name: &str) -> TokenStream {
    let mut tokens = input.into_iter();
    let mut name: Option<String> = None;
    while let Some(tt) = tokens.next() {
        if let proc_macro::TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                if let Some(proc_macro::TokenTree::Ident(n)) = tokens.next() {
                    name = Some(n.to_string());
                }
                break;
            }
        }
    }
    let Some(name) = name else {
        return TokenStream::new();
    };
    let imp = if trait_name == "Deserialize" {
        format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
    } else {
        format!("impl ::serde::{trait_name} for {name} {{}}")
    };
    imp.parse().expect("generated impl parses")
}
