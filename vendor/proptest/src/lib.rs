//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so this crate provides an
//! API-compatible, deterministic replacement for the pieces of proptest the
//! repository's property tests call: the [`Strategy`] trait with `prop_map`
//! and `boxed`, range/tuple/`Just`/`any`/`collection::vec` strategies, the
//! `proptest!`, `prop_compose!`, `prop_oneof!`, `prop_assert!`,
//! `prop_assert_eq!` and `prop_assume!` macros, and a seeded
//! [`test_runner::TestRunner`].
//!
//! Differences from upstream proptest, chosen deliberately for this repo:
//!
//! * **No shrinking.** A failing case reports the test name, case index and
//!   seed; re-running is fully deterministic, so the failure replays exactly.
//! * **Deterministic seeding.** Case seeds derive from the test name and
//!   case index (FNV-1a), not OS entropy, so CI and local runs agree.
//!   `proptest-regressions` files are ignored.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    /// Generates values of an associated type from a seeded RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies — the engine behind
    /// `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics on an empty option list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! requires at least one option"
            );
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy!((A.0)(A.0, B.1)(A.0, B.1, C.2)(A.0, B.1, C.2, D.3)(
        A.0, B.1, C.2, D.3, E.4
    )(A.0, B.1, C.2, D.3, E.4, F.5)(
        A.0, B.1, C.2, D.3, E.4, F.5, G.6
    )(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7));

    /// Strategy for `any::<T>()`.
    pub struct AnyStrategy<T> {
        _marker: PhantomData<fn() -> T>,
    }

    impl<T: super::arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Uniformly random values of `T`'s whole domain.
    pub fn any<T: super::arbitrary::Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

pub mod arbitrary {
    //! Default "whole domain" generation for primitive types.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical uniform generator.
    pub trait Arbitrary: Sized {
        /// Draws one uniformly random value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The case loop: seeding, rejection handling, failure reporting.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered this case out; try another.
        Reject,
        /// A `prop_assert!`-family assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given reason (upstream constructor).
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection: the case's inputs don't satisfy a precondition
        /// (upstream constructor).
        pub fn reject(_reason: impl Into<String>) -> Self {
            TestCaseError::Reject
        }
    }

    /// Runner configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Executes the case loop for one `proptest!`-generated test.
    pub struct TestRunner {
        config: ProptestConfig,
        name_hash: u64,
        name: &'static str,
    }

    impl TestRunner {
        /// Creates a runner whose case seeds derive from `name`.
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRunner {
                config,
                name_hash: h,
                name,
            }
        }

        /// Runs `f` until `config.cases` cases pass; panics on the first
        /// failing case with its replay seed.
        pub fn run(&mut self, f: impl Fn(&mut StdRng) -> Result<(), TestCaseError>) {
            let mut passed: u32 = 0;
            let mut attempt: u64 = 0;
            let max_attempts = u64::from(self.config.cases) * 256 + 4096;
            while passed < self.config.cases {
                let seed = self.name_hash ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut rng = StdRng::seed_from_u64(seed);
                match f(&mut rng) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject) => {}
                    Err(TestCaseError::Fail(msg)) => panic!(
                        "proptest '{}' failed at case {} (attempt {}, seed {:#x}):\n{}",
                        self.name, passed, attempt, seed, msg
                    ),
                }
                attempt += 1;
                assert!(
                    attempt <= max_attempts,
                    "proptest '{}': too many rejected cases ({} attempts for {} passes)",
                    self.name,
                    attempt,
                    passed
                );
            }
        }
    }
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_compose, prop_oneof, proptest};
}

/// Declares property tests over named strategies.
///
/// Supports the upstream form used in this workspace: an optional
/// `#![proptest_config(..)]` header followed by `#[test]` functions whose
/// arguments are `name in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, concat!(module_path!(), "::", stringify!($name)));
                runner.run(|proptest_case_rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), proptest_case_rng);
                    )+
                    $body
                    Ok(())
                });
            }
        )+
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)+) => {
        $crate::proptest!(@run ($cfg) $($rest)+);
    };
    ($($rest:tt)+) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)+);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (prop_l, prop_r) => {
                $crate::prop_assert!(
                    prop_l == prop_r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    prop_l,
                    prop_r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (prop_l, prop_r) => {
                $crate::prop_assert!(
                    prop_l == prop_r,
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    prop_l,
                    prop_r
                );
            }
        }
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Composes named sub-strategies into a derived-value strategy function.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ( $($outer:tt)* ) (
            $($arg:ident in $strat:expr),+ $(,)?
        ) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($arg,)+)| $body
            )
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        Small(u64),
        Index(usize),
        Fixed,
    }

    fn arb_pick() -> impl Strategy<Value = Pick> {
        prop_oneof![
            (0u64..100).prop_map(Pick::Small),
            (0usize..8).prop_map(Pick::Index),
            Just(Pick::Fixed),
        ]
    }

    prop_compose! {
        fn arb_pair()(a in 0u32..50, b in 50u32..100) -> (u32, u32) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0u8..=255, f in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            let _ = y;
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn exact_vec_size(v in crate::collection::vec(any::<u8>(), 7)) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn oneof_and_compose_generate(p in arb_pick(), pair in arb_pair()) {
            match p {
                Pick::Small(v) => prop_assert!(v < 100),
                Pick::Index(i) => prop_assert!(i < 8),
                Pick::Fixed => {}
            }
            prop_assert!(pair.0 < 50 && pair.1 >= 50);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert!(n != 3);
        }
    }

    #[test]
    fn failing_case_panics_with_context() {
        let result = std::panic::catch_unwind(|| {
            let mut runner = crate::test_runner::TestRunner::new(
                crate::test_runner::ProptestConfig::with_cases(8),
                "always_fails",
            );
            runner.run(|_| Err(crate::test_runner::TestCaseError::Fail("boom".into())));
        });
        let err = result.expect_err("runner must panic on failure");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(
            msg.contains("always_fails") && msg.contains("boom"),
            "{msg}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        fn collect() -> Vec<u64> {
            let mut out = Vec::new();
            let mut runner = crate::test_runner::TestRunner::new(
                crate::test_runner::ProptestConfig::with_cases(16),
                "determinism_probe",
            );
            // Channel values out through a cell captured by the closure.
            let sink = std::cell::RefCell::new(&mut out);
            runner.run(|rng| {
                sink.borrow_mut()
                    .push(crate::strategy::Strategy::generate(&(0u64..1_000_000), rng));
                Ok(())
            });
            out
        }
        assert_eq!(collect(), collect());
    }
}
