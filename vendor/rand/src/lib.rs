//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a small, deterministic implementation of the `rand`
//! surface it actually calls: [`RngCore`], [`SeedableRng`], the [`Rng`]
//! extension trait (`gen`, `gen_bool`, `gen_range`), [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`]. The generator behind [`rngs::StdRng`] is
//! xoshiro256** seeded through SplitMix64 — *not* the ChaCha stream of the
//! real crate — so seeded streams differ from upstream `rand`, but every
//! consumer in this repository asserts statistical or replay properties,
//! never golden values of the upstream stream.
//!
//! Only what the workspace needs is implemented; this is not a general
//! replacement for `rand`.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced by this shim).
pub struct Error {
    _priv: (),
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rand::Error")
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`RngCore::fill_bytes`]; this shim never fails.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `f64` in `[0, 1)` from 53 random bits.
#[inline]
fn unit_f64(rng: &mut (impl RngCore + ?Sized)) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn sample_standard(rng: &mut (impl RngCore + ?Sized)) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard(rng: &mut (impl RngCore + ?Sized)) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard(rng: &mut (impl RngCore + ?Sized)) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard(rng: &mut (impl RngCore + ?Sized)) -> Self {
        unit_f64(rng) as f32
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let v = mul_shift_u64(rng.next_u64(), span as u64);
                (self.start as $u).wrapping_add(v as $u) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $u).wrapping_sub(start as $u).wrapping_add(1);
                if span == 0 {
                    // Full domain of the type.
                    return rng.next_u64() as $t;
                }
                let v = mul_shift_u64(rng.next_u64(), span as u64);
                (start as $u).wrapping_add(v as $u) as $t
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

/// `floor(x * span / 2^64)` — an (effectively) unbiased range reduction.
#[inline]
fn mul_shift_u64(x: u64, span: u64) -> u64 {
    ((u128::from(x) * u128::from(span)) >> 64) as u64
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng);
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng) as f32;
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let v = start + (end - start) * unit_f64(rng);
        // Guard against rounding past the included endpoint.
        if v > end {
            end
        } else {
            v
        }
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    #[inline]
    fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> f32 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let v = start + (end - start) * unit_f64(rng) as f32;
        if v > end {
            end
        } else {
            v
        }
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniformly random value from `range`.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self) < p
    }

    /// Fills `dest` with random bytes (alias of [`RngCore::fill_bytes`]).
    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, Error, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Stream-incompatible with upstream `rand::rngs::StdRng` (ChaCha12),
    /// but equally suitable for seeded simulation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let bytes = self.next_u64().to_le_bytes();
                rem.copy_from_slice(&bytes[..rem.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // Scramble so weak seeds (e.g. all zeros) still yield a good
            // state; xoshiro must not start at the all-zero fixed point.
            let mut sm = s[0] ^ s[1].rotate_left(17) ^ s[2].rotate_left(31) ^ s[3].rotate_left(47);
            for word in s.iter_mut() {
                *word ^= splitmix64(&mut sm);
            }
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{Rng, RngCore};

    /// Extension methods on slices (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    //! Common imports.
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_replay() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = StdRng::from_seed([0u8; 32]);
        let distinct: std::collections::HashSet<u64> = (0..32).map(|_| r.next_u64()).collect();
        assert!(distinct.len() > 16);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x: u32 = r.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: i32 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_partial_chunks() {
        let mut r = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 11];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(r.try_fill_bytes(&mut buf).is_ok());
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
        assert!(v.choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn inclusive_float_range_covers_closed_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(2.0f64..=5.0);
            assert!((2.0..=5.0).contains(&v));
        }
        // A degenerate closed range is valid and returns its only point.
        assert_eq!(r.gen_range(3.0f64..=3.0), 3.0);
        assert_eq!(r.gen_range(1.5f32..=1.5), 1.5);
        for _ in 0..1000 {
            let v = r.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn standard_draws_all_used_types() {
        let mut r = StdRng::seed_from_u64(6);
        let _: bool = r.gen();
        let _: u8 = r.gen();
        let _: u32 = r.gen();
        let _: u64 = r.gen();
        let f: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
