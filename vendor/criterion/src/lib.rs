//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! small benchmark harness that is API-compatible with the criterion calls in
//! `crates/bench/benches/*`: [`Criterion::benchmark_group`],
//! `bench_function`/`bench_with_input`, [`Throughput`], [`BenchmarkId`],
//! [`black_box`] and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: after a short warm-up, each benchmark body runs in
//! batches sized to the warm-up estimate until the measurement window
//! elapses; the reported time per iteration is the median of batch means.
//! Supported CLI arguments (all others are ignored for compatibility):
//!
//! * a free-form substring filters benchmark ids;
//! * `--test` runs every benchmark body exactly once without timing;
//! * `--quick` shrinks the measurement window by 10×.
//!
//! Results are printed to stdout and, when the `BENCH_JSON` environment
//! variable names a path, appended as a JSON array of
//! `{id, ns_per_iter, throughput}` records — the hook the repository's
//! `BENCH_*.json` trajectory files are written through.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How work per iteration is expressed for derived throughput rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many abstract elements (e.g. chips).
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id that is only a parameter (group name supplies the prefix).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted where a benchmark name is expected.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Full benchmark id (`group/name[/param]`).
    pub id: String,
    /// Mean wall time per iteration, nanoseconds.
    pub ns_per_iter: f64,
    /// Derived rate, when a [`Throughput`] was configured.
    pub throughput: Option<(f64, &'static str)>,
}

/// Passed to benchmark closures; runs the measured body.
pub struct Bencher<'a> {
    mode: Mode,
    measurement_time: Duration,
    result_ns: &'a mut f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Measure,
    TestOnce,
}

impl Bencher<'_> {
    /// Calls `body` repeatedly and records the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if self.mode == Mode::TestOnce {
            black_box(body());
            *self.result_ns = 0.0;
            return;
        }
        // Warm-up: find a batch size whose runtime is measurable (~1 ms),
        // running at least a few iterations to fault in caches.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(body());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 24 {
                break;
            }
            batch *= 4;
        }
        // Measurement: batches of the discovered size until the window
        // elapses; keep per-batch means and report their median (robust to
        // scheduler noise without criterion's full bootstrap machinery).
        let mut means: Vec<f64> = Vec::new();
        let window_start = Instant::now();
        while window_start.elapsed() < self.measurement_time || means.len() < 5 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(body());
            }
            means.push(start.elapsed().as_nanos() as f64 / batch as f64);
            if means.len() >= 10_000 {
                break;
            }
        }
        means.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        *self.result_ns = means[means.len() / 2];
    }
}

/// A named collection of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the work performed per iteration for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let throughput = self.throughput;
        self.criterion.run_one(full, throughput, f);
        self
    }

    /// Benchmarks `f` with an input reference, criterion-style.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints nothing; summaries stream as they finish).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
    mode: Mode,
    measurement_time: Duration,
    summaries: Vec<Summary>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            mode: Mode::Measure,
            measurement_time: Duration::from_millis(900),
            summaries: Vec::new(),
        }
    }
}

impl Criterion {
    /// Applies the benchmark CLI arguments (`--test`, `--quick`, a filter).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.mode = Mode::TestOnce,
                "--quick" => self.measurement_time = Duration::from_millis(90),
                "--bench" | "--nocapture" | "--noplot" => {}
                // Options with a value we don't use.
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time"
                | "--sample-size" => {
                    args.next();
                }
                other => {
                    if !other.starts_with('-') && self.filter.is_none() {
                        self.filter = Some(other.to_string());
                    }
                }
            }
        }
        self
    }

    /// Opens a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 0,
        }
    }

    /// Benchmarks `f` under a bare id (no group).
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.run_one(id.into_id(), None, f);
        self
    }

    fn run_one<F>(&mut self, id: String, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut result_ns = f64::NAN;
        let mut bencher = Bencher {
            mode: self.mode,
            measurement_time: self.measurement_time,
            result_ns: &mut result_ns,
        };
        f(&mut bencher);
        if result_ns.is_nan() {
            // The closure never called iter(); nothing to report.
            return;
        }
        if self.mode == Mode::TestOnce {
            println!("test {id} ... ok (ran once, untimed)");
            self.summaries.push(Summary {
                id,
                ns_per_iter: 0.0,
                throughput: None,
            });
            return;
        }
        let throughput = throughput.map(|t| match t {
            Throughput::Elements(n) => (n as f64 * 1e9 / result_ns, "elem/s"),
            Throughput::Bytes(n) => (n as f64 * 1e9 / result_ns, "B/s"),
        });
        match throughput {
            Some((rate, unit)) => println!(
                "{id:<56} {:>14} ns/iter {:>16}/{unit}",
                format_scaled(result_ns),
                format_scaled(rate)
            ),
            None => println!("{id:<56} {:>14} ns/iter", format_scaled(result_ns)),
        }
        self.summaries.push(Summary {
            id,
            ns_per_iter: result_ns,
            throughput,
        });
    }

    /// All summaries recorded so far.
    pub fn summaries(&self) -> &[Summary] {
        &self.summaries
    }

    /// Writes every summary as a JSON array to `path`.
    ///
    /// The format is intentionally plain — one object per benchmark with
    /// `id`, `ns_per_iter` and optional `throughput`/`throughput_unit` — so
    /// the repository's `BENCH_*.json` files stay diffable between PRs.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut out = String::from("[\n");
        for (i, s) in self.summaries.iter().enumerate() {
            out.push_str("  {");
            out.push_str(&format!("\"id\": \"{}\"", escape_json(&s.id)));
            out.push_str(&format!(", \"ns_per_iter\": {:.3}", s.ns_per_iter));
            if let Some((rate, unit)) = &s.throughput {
                out.push_str(&format!(
                    ", \"throughput\": {rate:.3}, \"throughput_unit\": \"{unit}\""
                ));
            }
            out.push('}');
            if i + 1 < self.summaries.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n");
        std::fs::write(path, out)
    }

    /// Writes JSON to the path named by `BENCH_JSON`, if set.
    pub fn write_json_from_env(&self) {
        if let Ok(path) = std::env::var("BENCH_JSON") {
            if let Err(e) = self.write_json(std::path::Path::new(&path)) {
                eprintln!("warning: could not write {path}: {e}");
            }
        }
    }
}

fn format_scaled(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.3}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.3}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.3}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
            criterion.write_json_from_env();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_noop_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(64));
        group.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..64u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 32), &32u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn measures_and_summarises() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(20),
            ..Criterion::default()
        };
        run_noop_bench(&mut c);
        assert_eq!(c.summaries().len(), 2);
        let s = &c.summaries()[0];
        assert_eq!(s.id, "shim/spin");
        assert!(s.ns_per_iter > 0.0);
        let (rate, unit) = s.throughput.expect("throughput configured");
        assert!(rate > 0.0);
        assert_eq!(unit, "elem/s");
        assert_eq!(c.summaries()[1].id, "shim/param/32");
    }

    #[test]
    fn test_mode_runs_once_untimed() {
        let mut c = Criterion {
            mode: Mode::TestOnce,
            ..Criterion::default()
        };
        let mut calls = 0u32;
        c.bench_function("once", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert_eq!(calls, 1);
        assert_eq!(c.summaries()[0].ns_per_iter, 0.0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("match-me".into()),
            measurement_time: Duration::from_millis(5),
            ..Criterion::default()
        };
        let mut ran = false;
        c.bench_function("other", |b| {
            b.iter(|| {
                ran = true;
            })
        });
        assert!(!ran);
        assert!(c.summaries().is_empty());
    }

    #[test]
    fn json_round_trips_structure() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
            ..Criterion::default()
        };
        c.bench_function("json\"quoted\"", |b| b.iter(|| black_box(1 + 1)));
        let dir = std::env::temp_dir().join("criterion-shim-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        c.write_json(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("[\n") && text.trim_end().ends_with(']'));
        assert!(text.contains("\\\"quoted\\\""));
        assert!(text.contains("ns_per_iter"));
    }
}
