//! Offline shim for the `serde` API surface this workspace compiles
//! against: the `Serialize`/`Deserialize` traits and their derive macros.
//!
//! The workspace derives these traits on parameter and statistics types so
//! downstream consumers *could* serialize them, but nothing in-tree calls a
//! serializer. The build environment has no crates.io access, so this shim
//! provides the trait names and no-op derives; swapping back to real serde
//! is a one-line change in the workspace `Cargo.toml`.

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod de {
    //! Deserialization-side re-exports.
    pub use super::{Deserialize, DeserializeOwned};
}

pub mod ser {
    //! Serialization-side re-exports.
    pub use super::Serialize;
}
